"""Worker-side request execution: validate, build configs, run engines.

Every job runs on a pool thread under its own per-request
:class:`~repro.runtime.RuntimeGuard`: the effective ``wall_ms`` is the
request's ``params.wall_ms`` (else the server's default SLA), the
``max_rss_mb`` ceiling is shared, and the :class:`CancelToken` handed
in by the event loop is tripped by an explicit ``cancel`` op or by the
client disconnecting.  Engines run with
:attr:`~repro.config.OnBudget.RETURN`, so a tripped guard degrades to
the same partial payload the CLI would print — the response is the CLI
``--json`` object (built by :mod:`repro.payloads`) plus the envelope
keys ``id``, ``ok``, ``tenant`` (and ``cached`` on artifact-cache
hits).

Protocol ops
------------
``ping``           liveness round-trip through the pool
``chase``          one-shot chase (``theory``, ``database``)
``certain``        certain answers (``theory``, ``database``, ``query``)
``rewrite``        UCQ rewriting (``theory``, ``query``); finished
                   (saturated) rewritings are cached per session
``classify``       syntactic class profile (``theory``)
``countermodel``   the Theorem-2/3 pipeline
``fc-search``      bounded finite-model search
``skeleton``       S(D,T) extraction + Lemma-3 report
``view-create``    materialise a named incremental ChaseView
``view-update``    apply ``adds``/``removes`` fact lists to a view
``view-query``     certain answers against a view
``view-close``     drop a view
``session-close``  drop the whole tenant session
(``cancel``, ``stats``, ``health``, ``metrics``, ``shutdown`` are
handled on the event loop.)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .. import payloads
from ..errors import BudgetError, ReproError
from ..payloads import EXIT_ERROR, EXIT_INCOMPLETE, EXIT_OK, stop_code
from .config import ServeConfig
from .session import SessionRegistry, TheorySession, text_key

#: Request knobs every engine op understands (per-request guard
#: overrides on top of the server defaults).
GUARD_PARAM_KEYS = ("wall_ms", "max_rss_mb", "store")

#: Worker-side fault hook (``None`` in production).  The chaos battery
#: installs one via :func:`set_serve_fault_hook` to make workers slow
#: (sleep) or stuck (block until cancelled) deterministically; it runs
#: on the pool thread at the top of every request, receiving
#: ``(request, token)``.
_serve_fault_hook = None


def set_serve_fault_hook(hook):
    """Install (or clear, with ``None``) the worker fault hook.

    Returns the previous hook so test fixtures can restore it.  See
    :mod:`repro.testing.faults` for the context-manager wrappers.
    """
    global _serve_fault_hook
    previous = _serve_fault_hook
    _serve_fault_hook = hook
    return previous


class RequestError(ReproError):
    """A malformed or unserviceable request (maps to ``exit_code: 1``)."""


def _field(request: Dict[str, Any], name: str) -> str:
    value = request.get(name)
    if not isinstance(value, str) or not value.strip():
        raise RequestError(f"request needs a non-empty string {name!r} field")
    return value


def _params(request: Dict[str, Any]) -> Dict[str, Any]:
    params = request.get("params") or {}
    if not isinstance(params, dict):
        raise RequestError("params must be a JSON object")
    return params


def _free(request: Dict[str, Any]) -> Tuple[str, ...]:
    """The free-variable tuple: a JSON list or the CLI's comma string."""
    free = request.get("free")
    if free is None:
        return ()
    if isinstance(free, str):
        return tuple(name for name in free.split(",") if name)
    if isinstance(free, list) and all(isinstance(n, str) for n in free):
        return tuple(free)
    raise RequestError("free must be a list of names or a comma string")


def _guard_fields(
    params: Dict[str, Any], config: ServeConfig, token, deadline=None
) -> Dict[str, Any]:
    """Per-request guard config: request params over server defaults.

    *deadline*, when set, is the already-ticking queue deadline the
    admission layer started when the request was admitted; the engine's
    :class:`~repro.runtime.RuntimeGuard` prefers it over ``wall_ms``,
    so time spent queued counts against the request's SLA.
    """
    return {
        "wall_ms": params.get("wall_ms", config.wall_ms),
        "max_rss_mb": params.get("max_rss_mb", config.max_rss_mb),
        "store": params.get("store", config.store),
        "cancel_token": token,
        "deadline": deadline,
    }


def _int_param(params: Dict[str, Any], name: str, default: int) -> int:
    value = params.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise RequestError(f"params.{name} must be an integer")
    return value


# ----------------------------------------------------------------------
# Engine ops
# ----------------------------------------------------------------------

def _op_ping(session, request, params, guard):
    return {"command": "ping", "status": "pong", "counts": {}}, EXIT_OK


def _op_chase(session, request, params, guard):
    from ..chase import ChaseConfig, chase

    theory = session.theory(_field(request, "theory"))
    database = session.database(_field(request, "database"))
    config = ChaseConfig(max_depth=_int_param(params, "depth", 8), **guard)
    return payloads.chase_payload(chase(database, theory, config))


def _op_certain(session, request, params, guard):
    from ..chase import ChaseConfig, certain_report

    theory = session.theory(_field(request, "theory"))
    database = session.database(_field(request, "database"))
    query = session.query(_field(request, "query"), _free(request))
    # Mirrors the CLI's certain defaults exactly (parity battery).
    config = ChaseConfig(
        max_depth=_int_param(params, "depth", 12),
        max_facts=200_000,
        max_elements=None,
        **guard,
    )
    return payloads.certain_payload(
        certain_report(database, theory, query, config=config)
    )


def _op_rewrite(session, request, params, guard):
    from ..config import OnBudget
    from ..rewriting import RewriteConfig, legacy_rewrite, rewrite

    theory_text = _field(request, "theory")
    query_text = _field(request, "query")
    free = _free(request)
    legacy = bool(params.get("legacy", False))
    max_steps = _int_param(params, "max_steps", 20_000)
    max_queries = _int_param(params, "max_queries", 2_000)

    # The compiled-artifact cache: a *finished* rewriting is a pure
    # function of (engine, budgets, theory, query) — guard settings
    # cannot change it, only truncate it, and truncated results are
    # never cached.
    artifact_key = (
        "legacy" if legacy else "indexed",
        max_steps,
        max_queries,
        text_key(theory_text),
        text_key(query_text),
        free,
    )
    cached = session.cached_rewriting(artifact_key)
    if cached is not None:
        payload, code = cached
        payload = dict(payload)
        payload["cached"] = True
        return payload, code

    theory = session.theory(theory_text)
    query = session.query(query_text, free)
    config = RewriteConfig(
        max_steps=max_steps,
        max_queries=max_queries,
        on_budget=OnBudget.RETURN,
        **guard,
    )
    engine = legacy_rewrite if legacy else rewrite
    result = engine(query, theory, config)
    payload, code = payloads.rewrite_payload(result)
    if result.saturated:
        session.store_rewriting(artifact_key, payload, code)
        payload = dict(payload)
    return payload, code


def _op_classify(session, request, params, guard):
    from ..classes import classify

    return payloads.classify_payload(
        classify(session.theory(_field(request, "theory")))
    )


def _op_countermodel(session, request, params, guard):
    from ..core import PipelineConfig, build_finite_counter_model

    theory = session.theory(_field(request, "theory"))
    database = session.database(_field(request, "database"))
    query = session.query(_field(request, "query"), _free(request))
    config = PipelineConfig(**guard)
    depths = params.get("depths")
    if depths is not None:
        if not isinstance(depths, list) or not all(
            isinstance(d, int) for d in depths
        ):
            raise RequestError("params.depths must be a list of integers")
        config = config.with_overrides(chase_depths=tuple(depths))
    return payloads.countermodel_payload(
        build_finite_counter_model(theory, database, query, config)
    )


def _op_fc_search(session, request, params, guard):
    from ..fc import SearchConfig, legacy_search, search_finite_model

    theory = session.theory(_field(request, "theory"))
    database = session.database(_field(request, "database"))
    forbidden = None
    if request.get("query") is not None:
        forbidden = session.query(_field(request, "query"), _free(request))
    max_elements = _int_param(params, "max_elements", 10)
    max_nodes = _int_param(params, "max_nodes", 50_000)
    if params.get("legacy"):
        outcome = legacy_search(
            database,
            theory,
            forbidden=forbidden,
            max_elements=max_elements,
            max_nodes=max_nodes,
            config=SearchConfig(**guard),
        )
    else:
        config = SearchConfig(
            max_elements=max_elements,
            max_nodes=max_nodes,
            heuristic=params.get("heuristic", "dfs"),
            canonical_dedup=not params.get("no_canonical_dedup", False),
            **guard,
        )
        outcome = search_finite_model(
            database, theory, forbidden=forbidden, config=config
        )
    return payloads.fc_search_payload(outcome)


def _op_skeleton(session, request, params, guard):
    from ..skeleton import lemma3_report, skeleton

    theory = session.theory(_field(request, "theory"))
    database = session.database(_field(request, "database"))
    result = skeleton(
        database, theory, max_depth=_int_param(params, "depth", 8), **guard
    )
    return payloads.skeleton_payload(result, lemma3_report(result))


# ----------------------------------------------------------------------
# View ops
# ----------------------------------------------------------------------

def _view_name(request: Dict[str, Any]) -> str:
    return _field(request, "view")


def _view_counts(view) -> Dict[str, int]:
    return {
        "depth": view.depth,
        "facts": len(view),
        "elements": view.structure.domain_size,
        "base_facts": len(view.base_facts()),
    }


def _op_view_create(session: TheorySession, request, params, guard):
    from ..chase import ChaseView, IncrementalConfig

    name = _view_name(request)
    theory = session.theory(_field(request, "theory"))
    database = session.database(_field(request, "database"))
    config = IncrementalConfig(max_depth=_int_param(params, "depth", 8), **guard)
    view = ChaseView(database, theory, config)
    session.create_view(name, view)
    payload = {
        "command": "view-create",
        "view": name,
        "status": "saturated" if view.saturated else "truncated",
        "stopped_reason": view.stopped_reason,
        "counts": _view_counts(view),
        "facts": [str(f) for f in view.structure.sorted_facts()],
        "stats": payloads.stats_dict(view.initial_result.stats),
    }
    return payload, stop_code(view.stopped_reason, EXIT_OK)


def _require_view(session: TheorySession, request):
    name = _view_name(request)
    slot = session.view_slot(name)
    if slot is None:
        raise RequestError(f"tenant {session.tenant!r} has no view {name!r}")
    return name, slot


def _facts_arg(request: Dict[str, Any], name: str) -> List[Any]:
    from ..lf.parser import parse_facts

    value = request.get(name)
    if value is None:
        return []
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise RequestError(f"{name} must be a fact string or a list of them")
    facts: List[Any] = []
    for text in value:
        facts.extend(parse_facts(text))
    return facts


def _op_view_update(session: TheorySession, request, params, guard):
    name, slot = _require_view(session, request)
    adds = _facts_arg(request, "adds")
    removes = _facts_arg(request, "removes")
    with slot.lock:
        view = slot.view
        # Rebind this update to the *request's* guard: fresh cancel
        # token and deadline, not the creation request's (long dead).
        view.config = view.config.with_overrides(**guard)
        result = view.update(adds=adds, removes=removes)
        payload = {
            "command": "view-update",
            "view": name,
            "status": "saturated" if result.saturated else "truncated",
            "stopped_reason": result.stopped_reason,
            "counts": dict(
                _view_counts(view),
                added=len(result.added),
                removed=len(result.removed),
            ),
            "update": result.stats.as_dict(),
            "facts": [str(f) for f in view.structure.sorted_facts()],
        }
        return payload, stop_code(result.stopped_reason, EXIT_OK)


def _op_view_query(session: TheorySession, request, params, guard):
    name, slot = _require_view(session, request)
    query = session.query(_field(request, "query"), _free(request))
    with slot.lock:
        answer = slot.view.certain_one(query)
        counts = _view_counts(slot.view)
    verdict = {True: "certain", False: "not-certain", None: "unknown"}[
        answer.verdict
    ]
    rows = sorted(answer.answers, key=str)
    payload = {
        "command": "view-query",
        "view": name,
        "status": verdict,
        "complete": answer.complete,
        "counts": dict(counts, answers=len(answer.answers)),
        "answers": [[str(value) for value in row] for row in rows],
    }
    return payload, EXIT_OK if answer.verdict is not None else EXIT_INCOMPLETE


def _op_view_close(session: TheorySession, request, params, guard):
    name = _view_name(request)
    found = session.close_view(name)
    if not found:
        raise RequestError(f"tenant {session.tenant!r} has no view {name!r}")
    return {
        "command": "view-close",
        "view": name,
        "status": "closed",
        "counts": {},
    }, EXIT_OK


JOB_HANDLERS = {
    "ping": _op_ping,
    "chase": _op_chase,
    "certain": _op_certain,
    "rewrite": _op_rewrite,
    "classify": _op_classify,
    "countermodel": _op_countermodel,
    "fc-search": _op_fc_search,
    "skeleton": _op_skeleton,
    "view-create": _op_view_create,
    "view-update": _op_view_update,
    "view-query": _op_view_query,
    "view-close": _op_view_close,
}


def execute_request(
    registry: SessionRegistry,
    request: Dict[str, Any],
    config: ServeConfig,
    token,
    deadline=None,
) -> Dict[str, Any]:
    """Run one request to a complete response dict.  Never raises."""
    rid = request.get("id")
    op = request.get("op")
    tenant = request.get("tenant", "default")

    def failure(error: BaseException, code: int) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "command": op,
            "status": "error",
            "error": str(error),
            "exit_code": code,
        }
        if isinstance(error, BudgetError):
            payload["stopped_reason"] = error.stopped_reason
        return payload

    try:
        hook = _serve_fault_hook
        if hook is not None:
            hook(request, token)
        if not isinstance(tenant, str) or not tenant:
            raise RequestError("tenant must be a non-empty string")
        if op == "session-close":
            payload: Dict[str, Any] = {
                "command": "session-close",
                "status": "closed" if registry.close(tenant) else "not-found",
                "counts": {"sessions": len(registry)},
            }
            code = EXIT_OK
        else:
            handler = JOB_HANDLERS.get(op)
            if handler is None:
                raise RequestError(f"unknown op {op!r}")
            session = registry.get(tenant)
            session.requests += 1
            params = _params(request)
            guard = _guard_fields(params, config, token, deadline)
            payload, code = handler(session, request, params, guard)
            payload["exit_code"] = code
    except (ReproError, OSError, ValueError, TypeError, KeyError) as error:
        payload, code = failure(error, EXIT_ERROR), EXIT_ERROR

    payload["id"] = rid
    payload["ok"] = payload.get("status") != "error"
    payload["tenant"] = tenant if isinstance(tenant, str) else None
    return payload
