"""``repro serve`` — the warm multi-tenant service front-end.

A long-running server that keeps the amortizable state the one-shot
CLI throws away — parsed theories, compiled join plans, subsume/type
memos, finished rewriting artifacts, live incremental views — warm in
per-tenant :class:`~repro.serve.session.TheorySession`s, and answers
the same requests with the same JSON payloads as ``repro --json``.

Wire protocol (one JSON object per line, both directions)
---------------------------------------------------------
Request::

    {"id": 7, "op": "certain", "tenant": "team-a",
     "theory": "E(x,y) -> exists z. E(y,z)", "database": "E(a,b)",
     "query": "E(x,y), E(y,z)", "free": [],
     "params": {"depth": 12, "wall_ms": 500, "store": "columnar"}}

Response: the CLI ``--json`` payload for the same run (``command``,
``status``, ``counts``, ``stopped_reason``, ``stats``, ``exit_code``,
...) plus the envelope keys ``id`` (echoed), ``ok`` (``status !=
"error"``), ``tenant``, and ``cached`` (on rewriting-artifact hits).
Responses to pipelined requests may arrive out of order — match by
``id``.  Guard trips degrade, never error: a request past its
``wall_ms`` deadline still gets a well-formed payload with
``stopped_reason: "deadline"`` and ``exit_code: 2`` from the shared
exit-code table.

Ops: ``ping``, ``chase``, ``certain``, ``rewrite``, ``classify``,
``countermodel``, ``fc-search``, ``skeleton``, ``view-create``,
``view-update``, ``view-query``, ``view-close``, ``session-close``,
``cancel`` (``target``: the id to cancel), ``stats``, ``health``
(liveness + queue depth), ``metrics`` (full admission/shed/tenant
snapshot), ``shutdown``.

Overload: engine requests pass through the
:class:`~repro.serve.admission.AdmissionController` (bounded global
and per-tenant queues, weighted round-robin dispatch).  Over-limit
requests are shed immediately with ``{"ok": false, "error":
"overloaded", "retry_after_ms": ...}``; an admitted request's
``wall_ms`` deadline starts ticking at admission, so queue time counts
and a request that expires before dispatch is shed with
``stopped_reason: "deadline"``.  :meth:`ServeClient.request_with_retry`
is the matching client-side backoff loop.
"""

from .admission import AdmissionController, Pending
from .client import (
    IDEMPOTENT_OPS,
    ServeClient,
    ServeOverloaded,
    ServeTimeout,
)
from .config import ServeConfig
from .jobs import JOB_HANDLERS, execute_request, set_serve_fault_hook
from .server import (
    ReproServer,
    ServerThread,
    WORKER_THREAD_PREFIX,
    run_server,
    worker_thread_count,
)
from .session import SessionRegistry, TheorySession

__all__ = [
    "AdmissionController",
    "IDEMPOTENT_OPS",
    "JOB_HANDLERS",
    "Pending",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeOverloaded",
    "ServeTimeout",
    "ServerThread",
    "SessionRegistry",
    "TheorySession",
    "WORKER_THREAD_PREFIX",
    "execute_request",
    "run_server",
    "set_serve_fault_hook",
    "worker_thread_count",
]
