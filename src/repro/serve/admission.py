"""Admission control for ``repro serve``: the overload-resilience core.

PR 8's server submitted every accepted request straight into an
unbounded ``ThreadPoolExecutor`` queue, so a burst (or one hostile
tenant) grew the backlog without bound, blew the p99 SLA for everyone,
and eventually the RSS ceiling killed the process rather than the
offending work.  This module replaces that queue with three explicit
mechanisms, all deterministic and all observable through the server's
``metrics`` op:

* **Bounded queues.**  One global bound (``max_pending``) on requests
  admitted but not yet dispatched, plus a per-tenant bound
  (``tenant_max_pending``).  A request that would exceed either is
  *shed immediately* — the client gets a well-formed ``{"ok": false,
  "error": "overloaded", "retry_after_ms": ...}`` envelope in
  microseconds instead of a response that arrives seconds past its
  SLA.  ``retry_after_ms`` is a backlog-scaled estimate from the
  dispatcher's service-time EWMA, so clients back off proportionally
  to the actual overload.

* **Weighted round-robin dispatch.**  Tenant queues are drained in a
  deterministic cyclic order (first-queued first; each tenant takes up
  to ``weight`` consecutive turns, default 1), and no tenant may hold
  more than ``tenant_max_inflight`` worker slots — one hostile tenant
  can fill only its own queue, never the pool.  Dispatch order is a
  pure function of the submit/complete history, which is what the
  hypothesis battery in ``tests/serve/test_admission.py`` pins.

* **Queue deadlines.**  Every admitted request carries an
  already-ticking :class:`~repro.runtime.Deadline` built from its
  effective ``wall_ms`` SLA, handed through to the worker's
  :class:`~repro.runtime.RuntimeGuard` — so time spent queued counts
  against the request's wall budget.  A request whose deadline has
  already expired when its turn comes is shed at dispatch with
  ``stopped_reason: "deadline"`` and never touches a worker: under
  overload the pool only runs requests that can still be answered in
  time.

The controller is plain thread-safe Python with no asyncio dependency:
the server calls :meth:`AdmissionController.try_admit` and
:meth:`~AdmissionController.next_dispatch` from its event loop and
:meth:`~AdmissionController.complete` from job callbacks, and the test
batteries drive the same three methods synchronously.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..runtime import Deadline

#: Shed-cause vocabulary (the ``error`` field of a shed response).
SHED_OVERLOADED = "overloaded"
SHED_DEADLINE = "queue_deadline"
SHED_DRAINING = "draining"

#: Bounds on the ``retry_after_ms`` hint.
MIN_RETRY_AFTER_MS = 25.0
MAX_RETRY_AFTER_MS = 10_000.0
#: Service-time prior before any request has completed.
DEFAULT_SERVICE_MS = 50.0

#: How many dispatch decisions the fairness log keeps (metrics op /
#: starvation assertions in the chaos battery).
DISPATCH_LOG_SIZE = 512


class Pending:
    """One admitted-but-not-yet-dispatched request.

    ``payload`` is opaque to the controller — the server stores its
    connection handle there; the test batteries store whatever they
    need to assert on.
    """

    __slots__ = ("tenant", "rid", "request", "token", "deadline",
                 "enqueued", "payload")

    def __init__(
        self,
        tenant: str,
        rid: Any,
        request: "Optional[Dict[str, Any]]" = None,
        token: Any = None,
        deadline: "Optional[Deadline]" = None,
        payload: Any = None,
    ) -> None:
        self.tenant = tenant
        self.rid = rid
        self.request = request
        self.token = token
        self.deadline = deadline
        self.enqueued = time.monotonic()
        self.payload = payload

    def __repr__(self) -> str:
        return f"Pending({self.tenant!r}, id={self.rid!r})"


class _TenantState:
    """A tenant's queue plus its fairness bookkeeping."""

    __slots__ = ("name", "weight", "queue", "inflight", "credit",
                 "admitted", "dispatched", "shed")

    def __init__(self, name: str, weight: int) -> None:
        self.name = name
        self.weight = weight
        self.queue: "Deque[Pending]" = deque()
        self.inflight = 0
        self.credit = weight
        self.admitted = 0
        self.dispatched = 0
        self.shed = 0


class AdmissionController:
    """Bounded queues + weighted round-robin dispatch (module docstring).

    Parameters
    ----------
    workers:
        Size of the worker pool — the global inflight bound.  The
        server only submits a job to its executor when this controller
        hands it out, so the executor's internal queue stays empty and
        the *whole* backlog lives in these bounded queues.
    max_pending:
        Global bound on admitted-but-undispatched requests.  A request
        that could start immediately (a worker slot and its tenant's
        inflight quota are both free) is always admitted — ``0`` means
        "no queueing at all".
    tenant_max_pending:
        Per-tenant queue bound; ``None`` inherits ``max_pending``.
    tenant_max_inflight:
        Per-tenant bound on concurrently-running requests; ``None``
        inherits ``workers`` (no per-tenant throttle).
    tenant_weights:
        Optional ``{tenant: weight}`` map; a tenant with weight *w*
        drains up to *w* consecutive requests per round-robin turn.
        Unlisted tenants get weight 1.
    """

    def __init__(
        self,
        workers: int,
        max_pending: int = 1024,
        tenant_max_pending: "Optional[int]" = None,
        tenant_max_inflight: "Optional[int]" = None,
        tenant_weights: "Optional[Dict[str, int]]" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        self.workers = workers
        self.max_pending = max_pending
        self.tenant_max_pending = (
            max_pending if tenant_max_pending is None else tenant_max_pending
        )
        self.tenant_max_inflight = (
            workers if tenant_max_inflight is None else tenant_max_inflight
        )
        if self.tenant_max_pending < 0:
            raise ValueError(
                f"tenant_max_pending must be >= 0, got {self.tenant_max_pending}"
            )
        if self.tenant_max_inflight < 1:
            raise ValueError(
                f"tenant_max_inflight must be >= 1, got {self.tenant_max_inflight}"
            )
        self._weights = dict(tenant_weights or {})
        for tenant, weight in self._weights.items():
            if not isinstance(weight, int) or weight < 1:
                raise ValueError(
                    f"tenant weight must be a positive int, got "
                    f"{tenant!r}: {weight!r}"
                )
        self._lock = threading.Lock()
        # tenant -> state; kept only while the tenant has queued or
        # inflight work, so adversarially many tenant names cannot grow
        # this map without bound.
        self._tenants: "OrderedDict[str, _TenantState]" = OrderedDict()
        # round-robin ring: tenant names with a non-empty queue, in
        # first-queued order (invariant: name in ring <=> queue non-empty)
        self._ring: "Deque[str]" = deque()
        self.pending_total = 0
        self.inflight_total = 0
        self.pending_high_water = 0
        self.admitted = 0
        self.dispatched = 0
        self.completed = 0
        self.shed_counts: Dict[str, int] = {
            SHED_OVERLOADED: 0, SHED_DEADLINE: 0, SHED_DRAINING: 0,
        }
        self.dispatch_log: "Deque[str]" = deque(maxlen=DISPATCH_LOG_SIZE)
        self._service_ms_ewma: "Optional[float]" = None

    # -- admission -----------------------------------------------------

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(tenant, self._weights.get(tenant, 1))
            self._tenants[tenant] = state
        return state

    def _prune(self, state: _TenantState) -> None:
        if not state.queue and state.inflight == 0:
            self._tenants.pop(state.name, None)

    def try_admit(self, entry: Pending) -> "Optional[str]":
        """Admit *entry* (returns ``None``) or shed it (returns the reason).

        A request that can start immediately is always admitted;
        otherwise the global and per-tenant pending bounds apply.  The
        caller must follow an admission with :meth:`next_dispatch` —
        admission only queues.
        """
        with self._lock:
            state = self._state(entry.tenant)
            can_run_now = (
                self.inflight_total < self.workers
                and state.inflight < self.tenant_max_inflight
                and self.pending_total == 0
            )
            if not can_run_now and (
                self.pending_total >= self.max_pending
                or len(state.queue) >= self.tenant_max_pending
            ):
                state.shed += 1
                self.shed_counts[SHED_OVERLOADED] += 1
                self._prune(state)
                return SHED_OVERLOADED
            if not state.queue:
                self._ring.append(state.name)
            state.queue.append(entry)
            state.admitted += 1
            self.admitted += 1
            self.pending_total += 1
            self.pending_high_water = max(
                self.pending_high_water, self.pending_total
            )
            return None

    def retry_after_ms(self) -> int:
        """Backlog-scaled backoff hint for a shed response.

        The expected time for the current backlog to drain through the
        pool at the observed service rate, clamped to
        [:data:`MIN_RETRY_AFTER_MS`, :data:`MAX_RETRY_AFTER_MS`].
        """
        with self._lock:
            service = self._service_ms_ewma or DEFAULT_SERVICE_MS
            backlog = self.pending_total + self.inflight_total
        estimate = service * max(1.0, backlog / float(self.workers))
        return int(min(MAX_RETRY_AFTER_MS, max(MIN_RETRY_AFTER_MS, estimate)))

    # -- dispatch ------------------------------------------------------

    def _pop_next_locked(
        self, expired: "List[Pending]"
    ) -> "Optional[Pending]":
        """One WRR step: the next dispatchable entry, or ``None``.

        Expired-in-queue entries encountered on the way are moved to
        *expired* (shed with ``stopped_reason: "deadline"``) without
        consuming their tenant's turn.
        """
        for _ in range(len(self._ring)):
            name = self._ring[0]
            state = self._tenants[name]
            if state.inflight >= self.tenant_max_inflight:
                # tenant at its inflight quota: skip, keep cyclic order
                self._ring.rotate(-1)
                continue
            entry = None
            while state.queue:
                head = state.queue.popleft()
                self.pending_total -= 1
                # Early-shed an expired head only while other requests
                # wait behind it — then shedding frees capacity someone
                # can still use.  On an otherwise-idle server the entry
                # dispatches anyway and the worker's guard degrades it
                # to the usual truncated partial payload, preserving
                # the single-request deadline contract.
                if (
                    head.deadline is not None
                    and self.pending_total > 0
                    and head.deadline.expired()
                ):
                    state.shed += 1
                    self.shed_counts[SHED_DEADLINE] += 1
                    expired.append(head)
                    continue
                entry = head
                break
            if entry is None:
                # queue drained entirely by expiry
                self._ring.popleft()
                self._prune(state)
                continue
            state.inflight += 1
            state.dispatched += 1
            self.inflight_total += 1
            self.dispatched += 1
            self.dispatch_log.append(name)
            if not state.queue:
                self._ring.popleft()
                state.credit = state.weight
            else:
                state.credit -= 1
                if state.credit <= 0:
                    state.credit = state.weight
                    self._ring.rotate(-1)
            return entry
        return None

    def next_dispatch(self) -> "Tuple[List[Pending], List[Pending]]":
        """``(run, expired)``: entries to start now, and early sheds.

        Pops entries in weighted round-robin order while worker slots
        are free; entries in *run* are already counted inflight (pair
        each with a later :meth:`complete`).  Entries in *expired*
        passed their queue deadline before a worker could take them —
        answer them with ``stopped_reason: "deadline"`` and do **not**
        call :meth:`complete` for them.
        """
        run: "List[Pending]" = []
        expired: "List[Pending]" = []
        with self._lock:
            while self.inflight_total < self.workers:
                entry = self._pop_next_locked(expired)
                if entry is None:
                    break
                run.append(entry)
        return run, expired

    def complete(
        self, tenant: str, service_ms: "Optional[float]" = None
    ) -> None:
        """A dispatched request finished; frees its worker slot."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None or state.inflight <= 0:
                raise ValueError(
                    f"complete() without a matching dispatch for {tenant!r}"
                )
            state.inflight -= 1
            self.inflight_total -= 1
            self.completed += 1
            if service_ms is not None:
                if self._service_ms_ewma is None:
                    self._service_ms_ewma = float(service_ms)
                else:
                    self._service_ms_ewma += 0.2 * (
                        float(service_ms) - self._service_ms_ewma
                    )
            self._prune(state)

    def drain(self) -> "List[Pending]":
        """Empty every queue (server shutdown); returns the shed entries.

        Each is counted under ``"draining"``; the server answers them
        with the draining error so no admitted request ever goes
        unanswered.
        """
        shed: "List[Pending]" = []
        with self._lock:
            while self._ring:
                name = self._ring.popleft()
                state = self._tenants[name]
                while state.queue:
                    entry = state.queue.popleft()
                    self.pending_total -= 1
                    state.shed += 1
                    self.shed_counts[SHED_DRAINING] += 1
                    shed.append(entry)
                self._prune(state)
        return shed

    # -- introspection -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The metrics payload: queue depths, sheds, per-tenant state."""
        with self._lock:
            tenants = {
                name: {
                    "pending": len(state.queue),
                    "inflight": state.inflight,
                    "weight": state.weight,
                    "admitted": state.admitted,
                    "dispatched": state.dispatched,
                    "shed": state.shed,
                }
                for name, state in self._tenants.items()
            }
            return {
                "workers": self.workers,
                "max_pending": self.max_pending,
                "tenant_max_pending": self.tenant_max_pending,
                "tenant_max_inflight": self.tenant_max_inflight,
                "pending": self.pending_total,
                "inflight": self.inflight_total,
                "pending_high_water": self.pending_high_water,
                "saturation": round(
                    self.inflight_total / float(self.workers), 4
                ),
                "admitted": self.admitted,
                "dispatched": self.dispatched,
                "completed": self.completed,
                "shed": dict(self.shed_counts),
                "service_ms_ewma": (
                    None if self._service_ms_ewma is None
                    else round(self._service_ms_ewma, 3)
                ),
                "tenants": tenants,
            }

    def recent_dispatches(self) -> "List[str]":
        """The last :data:`DISPATCH_LOG_SIZE` dispatch decisions, in order."""
        with self._lock:
            return list(self.dispatch_log)

    def __repr__(self) -> str:
        return (
            f"AdmissionController(workers={self.workers}, "
            f"pending={self.pending_total}/{self.max_pending}, "
            f"inflight={self.inflight_total})"
        )
