"""repro — a Datalog∃ laboratory for *On the BDD/FC Conjecture*.

This library implements, end to end and from scratch, every object
defined in Gogacz & Marcinkowski's paper *On the BDD/FC Conjecture*
(PODS 2013): existential tuple-generating dependencies and datalog
rules, the (non-oblivious) chase, positive-first-order query rewriting
(the BDD property), positive n-types and their quotient structures,
colorings and conservativity, Very Treelike DAGs, the skeleton of a
chase, and the finite counter-model construction of Theorem 2 — plus
the transformations of Section 5 (binary heads, ternary reduction,
multi-head encodings, guarded-to-binary) and an independent
finite-model search used to cross-check the pipeline.

Quickstart
----------
>>> from repro import parse_theory, parse_structure, parse_query
>>> from repro.core import build_finite_counter_model
>>> theory = parse_theory("E(x,y) -> exists z. E(y,z)")
>>> result = build_finite_counter_model(
...     theory, parse_structure("E(a,b)"), parse_query("E(x,x)"))
>>> result.model is not None
True

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
executable reproduction of every example in the paper.
"""

from . import chase, classes, coloring, core, fc, lf, ptypes, rewriting
from . import skeleton, store, transforms, vtdag, zoo
from .config import BudgetedConfig, OnBudget
from .store import ColumnarStructure, StoreBackend, ensure_backend
from .lf import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Null,
    Rule,
    Signature,
    Structure,
    Theory,
    UnionOfConjunctiveQueries,
    Variable,
    parse_facts,
    parse_query,
    parse_rule,
    parse_structure,
    parse_theory,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "BudgetedConfig",
    "ColumnarStructure",
    "ConjunctiveQuery",
    "Constant",
    "Null",
    "OnBudget",
    "Rule",
    "Signature",
    "StoreBackend",
    "Structure",
    "Theory",
    "UnionOfConjunctiveQueries",
    "Variable",
    "chase",
    "classes",
    "coloring",
    "core",
    "ensure_backend",
    "fc",
    "lf",
    "parse_facts",
    "parse_query",
    "parse_rule",
    "parse_structure",
    "parse_theory",
    "ptypes",
    "rewriting",
    "skeleton",
    "store",
    "transforms",
    "vtdag",
    "zoo",
]
