"""The unified configuration contract shared by every engine.

Every long-running engine in the library — the chase
(:class:`repro.chase.ChaseConfig`), the UCQ rewriter
(:class:`repro.rewriting.RewriteConfig`), the Theorem-2 pipeline
(:class:`repro.core.PipelineConfig`), and the finite-model search
(:class:`repro.fc.SearchConfig`) — runs under *budgets* (the
underlying problems are undecidable, so budgets are unavoidable) and
must decide what to do when a budget is hit.  This module is the one
place that contract lives:

* :class:`OnBudget` — the two budget policies, as an enum.  Passing the
  legacy strings ``"return"`` / ``"raise"`` still works everywhere but
  emits a :class:`DeprecationWarning` (the shim is
  :meth:`OnBudget.coerce`).
* :class:`BudgetedConfig` — a mixin for the config dataclasses giving
  them the shared surface: :attr:`~BudgetedConfig.should_raise` and
  :meth:`~BudgetedConfig.with_overrides` (a type-checked
  ``dataclasses.replace`` that re-runs validation, replacing the old
  fragile ``{**config.__dict__, **overrides}`` merges).

Because :class:`OnBudget` subclasses :class:`str`, existing comparisons
such as ``config.on_budget == "raise"`` keep working unchanged.
"""

from __future__ import annotations

import dataclasses
import warnings
from enum import Enum
from typing import Any, Type, TypeVar

E = TypeVar("E", bound="Enum")
C = TypeVar("C", bound="BudgetedConfig")


def coerce_enum(
    value: Any,
    enum_cls: "Type[E]",
    field_name: str,
    deprecate_strings: bool = False,
) -> E:
    """Normalise *value* to a member of *enum_cls*.

    Enum members pass through; strings are looked up by value (raising
    ``ValueError`` with the allowed values on a miss).  When
    *deprecate_strings* is set, a successful string lookup emits a
    :class:`DeprecationWarning` — the shim that keeps legacy
    stringly-typed call sites working while steering new code to the
    enum.
    """
    if isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            member = enum_cls(value)
        except ValueError:
            allowed = ", ".join(repr(m.value) for m in enum_cls)
            raise ValueError(
                f"{field_name} must be one of {allowed}, got {value!r}"
            ) from None
        if deprecate_strings:
            warnings.warn(
                f"passing {field_name}={value!r} as a string is deprecated; "
                f"use {enum_cls.__name__}.{member.name}",
                DeprecationWarning,
                stacklevel=3,
            )
        return member
    raise ValueError(
        f"{field_name} must be a {enum_cls.__name__} (or its string value), "
        f"got {value!r}"
    )


class OnBudget(str, Enum):
    """What an engine does when it exhausts a budget.

    Attributes
    ----------
    RETURN:
        Stop quietly and return a partial result flagged as incomplete
        (``saturated=False`` / ``model=None`` depending on the engine).
    RAISE:
        Raise the engine's budget exception
        (:class:`~repro.errors.ChaseBudgetExceeded`,
        :class:`~repro.errors.RewritingBudgetExceeded`,
        :class:`~repro.errors.PipelineError`).
    """

    RETURN = "return"
    RAISE = "raise"

    @classmethod
    def coerce(cls, value: "OnBudget | str") -> "OnBudget":
        """The deprecation shim: accept legacy strings, warn, normalise."""
        return coerce_enum(value, cls, "on_budget", deprecate_strings=True)


class BudgetedConfig:
    """Mixin giving config dataclasses the shared budget surface.

    Subclasses are dataclasses declaring their own ``on_budget`` field
    (defaults differ per engine); their ``__post_init__`` must call
    ``super().__post_init__()`` so the legacy-string shim runs.
    """

    on_budget: OnBudget

    def __post_init__(self) -> None:
        self.on_budget = OnBudget.coerce(self.on_budget)

    @property
    def should_raise(self) -> bool:
        """Whether hitting a budget raises (vs returning a partial result)."""
        return self.on_budget is OnBudget.RAISE

    def with_overrides(self: "C", **overrides: Any) -> "C":
        """A copy with the given fields replaced.

        Built on :func:`dataclasses.replace`, so unknown field names
        raise ``TypeError`` and the subclass's ``__post_init__``
        re-validates the merged result.  With no overrides the instance
        itself is returned (configs are treated as immutable by
        convention).
        """
        if not overrides:
            return self
        return dataclasses.replace(self, **overrides)
