"""The unified configuration contract shared by every engine.

Every long-running engine in the library — the chase
(:class:`repro.chase.ChaseConfig`), the UCQ rewriter
(:class:`repro.rewriting.RewriteConfig`), the Theorem-2 pipeline
(:class:`repro.core.PipelineConfig`), and the finite-model search
(:class:`repro.fc.SearchConfig`) — runs under *budgets* (the
underlying problems are undecidable, so budgets are unavoidable) and
must decide what to do when a budget is hit.  This module is the one
place that contract lives:

* :class:`OnBudget` — the two budget policies, as an enum.  Passing the
  legacy strings ``"return"`` / ``"raise"`` still works everywhere but
  emits a :class:`DeprecationWarning` (the shim is
  :meth:`OnBudget.coerce`).
* :class:`BudgetedConfig` — the dataclass base of the config
  dataclasses, giving them the shared surface:
  :attr:`~BudgetedConfig.should_raise`,
  :meth:`~BudgetedConfig.with_overrides` (a type-checked
  ``dataclasses.replace`` that re-runs validation, replacing the old
  fragile ``{**config.__dict__, **overrides}`` merges), and the
  **runtime-guard fields** shared by every engine
  (:mod:`repro.runtime`): :attr:`~BudgetedConfig.wall_ms` (monotonic
  wall-clock deadline), :attr:`~BudgetedConfig.max_rss_mb` (soft peak
  RSS ceiling), :attr:`~BudgetedConfig.cancel_token` (cooperative
  cancellation), and :attr:`~BudgetedConfig.guards_disabled` (the
  benchmark ablation switch).

Hitting any guard obeys the same :class:`OnBudget` policy as the count
budgets: ``RETURN`` yields a partial result whose ``stopped_reason``
names the cause, ``RAISE`` raises the matching typed exception
(:class:`~repro.errors.DeadlineExceeded`,
:class:`~repro.errors.Cancelled`,
:class:`~repro.errors.MemoryBudgetExceeded`) carrying the partial
stats snapshot.

Because :class:`OnBudget` subclasses :class:`str`, existing comparisons
such as ``config.on_budget == "raise"`` keep working unchanged.
"""

from __future__ import annotations

import dataclasses
import warnings
from enum import Enum
from typing import TYPE_CHECKING, Any, Optional, Type, TypeVar

from .store.backend import StoreBackend, resolve_backend

if TYPE_CHECKING:  # pragma: no cover
    from .runtime.guard import CancelToken, Deadline

E = TypeVar("E", bound="Enum")
C = TypeVar("C", bound="BudgetedConfig")


def coerce_enum(
    value: Any,
    enum_cls: "Type[E]",
    field_name: str,
    deprecate_strings: bool = False,
) -> E:
    """Normalise *value* to a member of *enum_cls*.

    Enum members pass through; strings are looked up by value (raising
    ``ValueError`` with the allowed values on a miss).  When
    *deprecate_strings* is set, a successful string lookup emits a
    :class:`DeprecationWarning` — the shim that keeps legacy
    stringly-typed call sites working while steering new code to the
    enum.
    """
    if isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            member = enum_cls(value)
        except ValueError:
            allowed = ", ".join(repr(m.value) for m in enum_cls)
            raise ValueError(
                f"{field_name} must be one of {allowed}, got {value!r}"
            ) from None
        if deprecate_strings:
            warnings.warn(
                f"passing {field_name}={value!r} as a string is deprecated; "
                f"use {enum_cls.__name__}.{member.name}",
                DeprecationWarning,
                stacklevel=3,
            )
        return member
    raise ValueError(
        f"{field_name} must be a {enum_cls.__name__} (or its string value), "
        f"got {value!r}"
    )


class OnBudget(str, Enum):
    """What an engine does when it exhausts a budget.

    Attributes
    ----------
    RETURN:
        Stop quietly and return a partial result flagged as incomplete
        (``saturated=False`` / ``model=None`` depending on the engine).
    RAISE:
        Raise the engine's budget exception
        (:class:`~repro.errors.ChaseBudgetExceeded`,
        :class:`~repro.errors.RewritingBudgetExceeded`,
        :class:`~repro.errors.PipelineError`) — or, when a runtime
        guard tripped, the matching
        :class:`~repro.errors.DeadlineExceeded` /
        :class:`~repro.errors.Cancelled` /
        :class:`~repro.errors.MemoryBudgetExceeded`.  All carry the
        engine's stats snapshot on ``.stats``.
    """

    RETURN = "return"
    RAISE = "raise"

    @classmethod
    def coerce(cls, value: "OnBudget | str") -> "OnBudget":
        """The deprecation shim: accept legacy strings, warn, normalise."""
        return coerce_enum(value, cls, "on_budget", deprecate_strings=True)


@dataclasses.dataclass
class BudgetedConfig:
    """Dataclass base giving engine configs the shared budget surface.

    Subclasses redeclare ``on_budget`` to pick their engine's default
    policy; their ``__post_init__`` must call
    ``super().__post_init__()`` so the legacy-string shim and the guard
    validation run.

    Attributes
    ----------
    on_budget:
        What to do when any budget — count-based or guard-based — is
        hit (:class:`OnBudget`).
    wall_ms:
        Monotonic wall-clock budget for the whole run, in milliseconds
        (``None`` = no deadline).  Checked at every engine checkpoint
        by the run's :class:`~repro.runtime.RuntimeGuard`.
    deadline:
        An already-ticking :class:`~repro.runtime.Deadline` to run
        under instead of starting a fresh ``wall_ms`` budget.  This is
        how ``repro serve`` makes queue time count: the admission layer
        starts the deadline when a request is *admitted*, and the
        worker's guard inherits it, so a request that waited 400ms of a
        500ms SLA has 100ms of engine budget left.  When set it wins
        over ``wall_ms``.
    max_rss_mb:
        Soft ceiling on the process's peak RSS in MiB (``None`` = no
        ceiling).  Polled cheaply every few checkpoints via
        ``resource.getrusage``; degrades to a partial result.
    cancel_token:
        A :class:`~repro.runtime.CancelToken` polled at every
        checkpoint.  ``None`` falls back to the ambient token installed
        by :func:`~repro.runtime.cancellation_scope` (the CLI's
        Ctrl-C/SIGTERM path), if any.
    guards_disabled:
        Skip guard construction entirely (the run uses the shared
        inactive guard).  The ablation switch for the
        ``BENCH_guard.json`` overhead measurement — not meant for
        production configs.
    store:
        Fact-store backend the engine should run on
        (:class:`~repro.store.StoreBackend`, or ``"dict"`` /
        ``"columnar"``).  ``None`` (the default) defers to the
        ``REPRO_STORE`` environment variable and, failing that,
        inherits the input structure's backend unchanged.  Engines
        apply it via :func:`repro.store.ensure_backend` when they take
        their working copy of the input.
    """

    on_budget: OnBudget = OnBudget.RETURN
    wall_ms: "Optional[float]" = None
    max_rss_mb: "Optional[float]" = None
    cancel_token: "Optional[CancelToken]" = None
    guards_disabled: bool = False
    store: "Optional[StoreBackend]" = None
    deadline: "Optional[Deadline]" = None

    def __post_init__(self) -> None:
        self.on_budget = OnBudget.coerce(self.on_budget)
        if self.store is not None:
            self.store = coerce_enum(self.store, StoreBackend, "store")
        if self.deadline is not None and not hasattr(self.deadline, "expired"):
            raise ValueError(
                f"deadline must be a repro.runtime.Deadline, got "
                f"{self.deadline!r}"
            )
        if self.wall_ms is not None and self.wall_ms < 0:
            raise ValueError(f"wall_ms must be >= 0, got {self.wall_ms}")
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise ValueError(f"max_rss_mb must be > 0, got {self.max_rss_mb}")

    def resolved_store(self) -> "Optional[StoreBackend]":
        """The effective backend choice: the explicit ``store`` field,
        else the ``REPRO_STORE`` environment variable, else ``None``
        (inherit the input structure's backend)."""
        return resolve_backend(self.store)

    @property
    def should_raise(self) -> bool:
        """Whether hitting a budget raises (vs returning a partial result)."""
        return self.on_budget is OnBudget.RAISE

    def with_overrides(self: "C", **overrides: Any) -> "C":
        """A copy with the given fields replaced.

        Built on :func:`dataclasses.replace`, so unknown field names
        raise ``TypeError`` and the subclass's ``__post_init__``
        re-validates the merged result.  With no overrides the instance
        itself is returned (configs are treated as immutable by
        convention).
        """
        if not overrides:
            return self
        return dataclasses.replace(self, **overrides)
