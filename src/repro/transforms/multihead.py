"""Multi-head TGDs (Section 5.3).

Two directions are implemented:

* :func:`multihead_to_singlehead` — for unrestricted arity, a
  multi-head TGD is replaced by one single-head TGD whose head is the
  *join* of the head atoms (a fresh predicate over all head variables)
  plus datalog rules splitting the join back (the paper's observation
  that the conjecture's single-head restriction is harmless when arity
  is unrestricted).

* :func:`atoms_to_binary_encoding` — the paper's encoding showing the
  multi-head binary conjecture equals the full conjecture: each atom
  ``P(x1, …, xk)`` becomes ``A¹_P(t, x1) ∧ … ∧ A^k_P(t, x2)`` with a
  fresh *atom-identifier* variable ``t`` (read ``A^i_P(t, x)`` as "x is
  the i-th argument of the P-atom t").  Heads become multi-head binary
  TGDs with the identifier existential.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..lf.atoms import Atom
from ..lf.rules import Rule, Theory
from ..lf.signature import Signature
from ..lf.structures import Structure
from ..lf.terms import Constant, Element, Null, NullFactory, Variable


def multihead_to_singlehead(theory: Theory) -> Theory:
    """Replace every multi-head rule by a join-headed TGD + splitters.

    Datalog multi-head rules are simply split (no shared witness).  For
    an existential rule ``Ψ ⇒ ∃z̄ (H1 ∧ … ∧ Hk)`` a fresh predicate
    ``J`` over the head variables is introduced:

        ``Ψ ⇒ ∃z̄ J(v̄)``  and  ``J(v̄) → Hi``  for each i.
    """
    signature = theory.signature
    rewritten: List[Rule] = []
    for rule in theory.rules:
        if rule.is_single_head:
            rewritten.append(rule)
            continue
        if rule.is_datalog:
            rewritten.extend(rule.split_heads())
            continue
        head_vars = sorted(rule.head_variables())
        join = signature.fresh_relation_name("J")
        signature = signature.with_relations({join: len(head_vars)})
        join_atom = Atom(join, tuple(head_vars))
        rewritten.append(Rule(rule.body, (join_atom,), rule.label))
        for head in rule.head:
            rewritten.append(Rule((join_atom,), (head,), f"{rule.label}-split"))
    return Theory(rewritten, signature)


def _argument_predicate(pred: str, position: int) -> str:
    """The name ``A^i_P``: position is 1-based in the paper."""
    return f"A{position}_{pred}"


def _atom_identifier(index: int, taken: "set[str]") -> Variable:
    name = f"t{index}"
    while name in taken:
        name += "'"
    return Variable(name)


def encode_atom_binary(
    atom: Atom, identifier: Variable
) -> List[Atom]:
    """``P(x1, …, xk)`` ⟶ ``A1_P(t, x1), …, Ak_P(t, xk)``."""
    return [
        Atom(_argument_predicate(atom.pred, position + 1), (identifier, arg))
        for position, arg in enumerate(atom.args)
    ]


def atoms_to_binary_encoding(theory: Theory) -> Theory:
    """The Section 5.3 binary multi-head encoding of an arbitrary theory.

    Every body atom receives its own universally quantified identifier
    variable; every head atom an existentially quantified one.  The
    result is a theory over binary predicates ``A^i_P`` whose rules are
    (in general) multi-head.
    """
    rewritten: List[Rule] = []
    for rule in theory.rules:
        taken = {v.name for v in rule.variables()}
        counter = 0
        body: List[Atom] = []
        for body_atom in rule.body:
            if body_atom.is_equality:
                body.append(body_atom)
                continue
            identifier = _atom_identifier(counter, taken)
            taken.add(identifier.name)
            counter += 1
            body.extend(encode_atom_binary(body_atom, identifier))
        head: List[Atom] = []
        for head_atom in rule.head:
            identifier = _atom_identifier(counter, taken)
            taken.add(identifier.name)
            counter += 1
            head.extend(encode_atom_binary(head_atom, identifier))
        rewritten.append(Rule(body, head, rule.label))
    return Theory(rewritten)


def encode_structure_binary(structure: Structure) -> Structure:
    """Encode a database with one fresh identifier element per fact."""
    encoded = Structure()
    nulls = NullFactory.above(structure.domain())
    for fact in structure.sorted_facts():
        identifier = nulls.fresh()
        for position, arg in enumerate(fact.args):
            encoded.add_fact(
                Atom(_argument_predicate(fact.pred, position + 1), (identifier, arg))
            )
    for element in structure.domain():
        encoded.add_element(element)
    return encoded


def decode_structure_binary(
    encoded: Structure, signature: Signature
) -> Structure:
    """Invert :func:`encode_structure_binary`: group the ``A^i_P`` facts
    by identifier and rebuild each original atom that is complete."""
    partial: Dict[Tuple[str, Element], Dict[int, Element]] = {}
    for fact in encoded.facts():
        name = fact.pred
        for pred, arity in signature.relations.items():
            for position in range(1, arity + 1):
                if name == _argument_predicate(pred, position):
                    identifier, value = fact.args
                    partial.setdefault((pred, identifier), {})[position] = value
    decoded = Structure(signature=signature)
    for (pred, _identifier), arguments in partial.items():
        arity = signature.arity(pred)
        if set(arguments) == set(range(1, arity + 1)):
            decoded.add_fact(
                Atom(pred, tuple(arguments[i] for i in range(1, arity + 1)))
            )
    return decoded
