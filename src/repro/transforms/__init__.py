"""The Section 5 transformations: binary heads, ternary reduction,
multi-head encodings, and the guarded-to-binary translation."""

from .binary_heads import is_frontier_one, split_frontier_one_heads
from .guarded import GuardedTranslation, guarded_to_binary
from .multihead import (
    atoms_to_binary_encoding,
    decode_structure_binary,
    encode_atom_binary,
    encode_structure_binary,
    multihead_to_singlehead,
)
from .ternary import TernaryReduction, flatten_atom, ternary_reduction

__all__ = [
    "GuardedTranslation",
    "TernaryReduction",
    "atoms_to_binary_encoding",
    "decode_structure_binary",
    "encode_atom_binary",
    "encode_structure_binary",
    "flatten_atom",
    "guarded_to_binary",
    "is_frontier_one",
    "multihead_to_singlehead",
    "split_frontier_one_heads",
    "ternary_reduction",
]
