"""Guarded Datalog∃ is binary in disguise (Section 5.6).

The paper re-proves finite controllability of Guarded Datalog∃ by
rewriting any guarded program into a *binary* program to which the
toolkit of Sections 2 and 4 applies.  This module implements that
rewriting, with the paper's predicates:

* ``F_i(x, y)`` — "x is the i-th parent of y" (step ii);
* ``ER_R(y, z)`` — "the unique rule deriving the TGP R was applied to a
  tuple led by y, creating z" (step vi);
* ``Rm_R(z)`` — the monadic tuple marker for the TGP atom led by z;
* ``Qm_Q_<i1,…,il>(y)`` — monadic memory: "Q holds of the parents
  i1 … il of y" (step vii), with the extra index ``0`` meaning "y
  itself" (needed when an atom mentions its own guard element).

Guardedness is what makes the enumeration of parent indices complete:
every body variable occurs in the guard, hence denotes a parent of the
guard atom's youngest element (or that element itself), so a rule can
be replaced by all its parent-index instantiations (steps iii/v).

Databases are translated by giving each fact a guard: a TGP-shaped
fact ``R(ā, c)`` is guarded by its own last element; any other fact
gets a fresh guard constant remembering the tuple (the practical form
of the paper's "D can also be hardwired into T").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..classes.recognizers import guard_of, is_guarded
from ..lf.atoms import Atom
from ..lf.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Element, Term, Variable


def _parent_pred(index: int) -> str:
    return f"F_{index}"


def _creation_pred(tgp: str) -> str:
    return f"ER_{tgp}"


def _tuple_marker(tgp: str) -> str:
    return f"Rm_{tgp}"


def _monadic_pred(pred: str, indices: Sequence[int]) -> str:
    return f"Qm_{pred}_" + "_".join(str(i) for i in indices)


@dataclass
class GuardedTranslation:
    """The binary program T′ plus everything needed to use it.

    Attributes
    ----------
    theory:
        The binary theory.
    original:
        The guarded input theory.
    parent_count:
        K: the number of parent indices in play.
    tgps:
        The TGPs of the (preprocessed) original theory.
    non_tgp_arities:
        Arity of each predicate remembered monadically.
    """

    theory: Theory
    original: Theory
    parent_count: int
    tgps: FrozenSet[str]
    non_tgp_arities: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------
    def translate_database(self, database: Structure) -> Structure:
        """Give every fact a guard element and encode it binarily."""
        translated = Structure()
        guard_counter = [0]
        for fact in database.sorted_facts():
            if fact.pred in self.tgps and fact.arity >= 2:
                # guarded by its own last element
                *parents, young = fact.args
                for position, parent in enumerate(parents, start=1):
                    translated.add_fact(
                        Atom(_parent_pred(position), (parent, young))
                    )
                translated.add_fact(Atom(_tuple_marker(fact.pred), (young,)))
            else:
                guard = Constant(f"_guard{guard_counter[0]}")
                guard_counter[0] += 1
                indices = tuple(range(1, fact.arity + 1))
                for position, value in zip(indices, fact.args):
                    translated.add_fact(Atom(_parent_pred(position), (value, guard)))
                translated.add_fact(
                    Atom(_monadic_pred(fact.pred, indices), (guard,))
                )
        for element in database.domain():
            translated.add_element(element)
        return translated

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def translate_atom_variants(
        self, atom: Atom, leader: Variable
    ) -> "List[List[Atom]]":
        """All binary encodings of one query atom, with *leader* as the
        knowing element (each variant is a conjunction)."""
        variants: List[List[Atom]] = []
        if atom.pred in self.tgps and atom.arity >= 2:
            *parents, young = atom.args
            conjunction = [
                Atom(_parent_pred(position), (parent, young))
                for position, parent in enumerate(parents, start=1)
            ]
            conjunction.append(Atom(_tuple_marker(atom.pred), (young,)))
            return [conjunction]
        for indices in itertools.product(
            range(0, self.parent_count + 1), repeat=atom.arity
        ):
            # index 0 pins the leader to that argument's value: the atom
            # is then remembered by the argument itself.
            pinned: "Optional[Term]" = None
            consistent = True
            for index, value in zip(indices, atom.args):
                if index == 0:
                    if pinned is not None and pinned != value:
                        consistent = False
                        break
                    pinned = value
            if not consistent:
                continue
            knower: Term = pinned if pinned is not None else leader
            conjunction: List[Atom] = []
            for index, value in zip(indices, atom.args):
                if index > 0:
                    conjunction.append(Atom(_parent_pred(index), (value, knower)))
            conjunction.append(Atom(_monadic_pred(atom.pred, indices), (knower,)))
            variants.append(conjunction)
        return variants

    def translate_query(
        self, query: ConjunctiveQuery, max_disjuncts: int = 4_096
    ) -> UnionOfConjunctiveQueries:
        """Translate a CQ into a UCQ over the binary signature.

        Each atom gets its own (fresh, existential) leading variable;
        the parent-index choices per atom multiply into the union.
        """
        taken = {v.name for v in query.variables()}
        per_atom: List[List[List[Atom]]] = []
        for position, atom in enumerate(query.atoms):
            if atom.is_equality:
                per_atom.append([[atom]])
                continue
            name = f"lead{position}"
            while name in taken:
                name += "'"
            taken.add(name)
            leader = Variable(name)
            per_atom.append(self.translate_atom_variants(atom, leader))
        disjuncts: List[ConjunctiveQuery] = []
        for combination in itertools.product(*per_atom):
            atoms = [a for conjunction in combination for a in conjunction]
            disjuncts.append(ConjunctiveQuery(atoms, query.free))
            if len(disjuncts) >= max_disjuncts:
                break
        return UnionOfConjunctiveQueries(disjuncts)


def _preprocess(theory: Theory) -> Tuple[Theory, FrozenSet[str]]:
    """Steps (i)/(iv): single-head, witness-last, one TGD per TGP,
    TGPs separated from datalog heads."""
    if not is_guarded(theory):
        raise ValueError("theory is not guarded")
    rules: List[Rule] = []
    signature = theory.signature
    tgd_count: Dict[str, int] = {}
    for rule in theory.rules:
        if not rule.is_single_head:
            raise ValueError(f"guarded translation needs single-head rules: {rule}")
        if rule.is_existential:
            witnesses = sorted(rule.existential_variables())
            if len(witnesses) != 1:
                raise ValueError(f"one witness per TGD expected: {rule}")
            head = rule.head_atom
            if head.args[-1] != witnesses[0] or head.args[:-1].count(witnesses[0]):
                raise ValueError(
                    f"the witness must be exactly the last head argument: {rule}"
                )
            tgd_count[head.pred] = tgd_count.get(head.pred, 0) + 1
        rules.append(rule)

    datalog_heads = {
        r.head_atom.pred for r in rules if r.is_datalog
    }
    adjusted: List[Rule] = []
    for rule in rules:
        if not rule.is_existential:
            adjusted.append(rule)
            continue
        head = rule.head_atom
        clash = head.pred in datalog_heads
        shared = tgd_count.get(head.pred, 0) > 1
        if clash or shared:
            fresh = signature.fresh_relation_name(head.pred + "_tgp")
            signature = signature.with_relations({fresh: head.arity})
            adjusted.append(Rule(rule.body, (Atom(fresh, head.args),), rule.label))
            variables = tuple(Variable(f"v{i}") for i in range(head.arity))
            adjusted.append(
                Rule((Atom(fresh, variables),), (Atom(head.pred, variables),), "tgp-split")
            )
            tgd_count[head.pred] -= 1
            tgd_count[fresh] = 1
            datalog_heads.add(head.pred)
        else:
            adjusted.append(rule)
    final = Theory(adjusted, signature)
    return final, final.tgp_predicates()


def _index_assignments(
    variables: Sequence[Variable], parent_count: int
) -> "Iterable[Dict[Variable, int]]":
    """All maps body-variable → parent-index (1..K). Index 0 (the
    leader itself) is reserved for the leader variable, handled apart."""
    for combination in itertools.product(
        range(1, parent_count + 1), repeat=len(variables)
    ):
        yield dict(zip(variables, combination))


def guarded_to_binary(theory: Theory) -> GuardedTranslation:
    """Run the full Section 5.6 translation (steps i–vii).

    Returns the binary program together with database/query
    translators.  The blow-up is exponential in the number of body
    variables per rule (the paper's "all possible rules of the form
    (♠11)") — fine for the bounded-arity guarded programs the
    construction targets.
    """
    prepared, tgps = _preprocess(theory)
    for rule in prepared.rules:
        for atom in rule.body + rule.head:
            if atom.is_equality or (atom.pred in tgps and atom.arity >= 2):
                continue
            if any(not isinstance(arg, Variable) for arg in atom.args):
                raise ValueError(
                    f"constants in non-TGP atoms are not supported by the "
                    f"guarded translation: {atom} in {rule}"
                )
    parent_count = max(
        (arity for _, arity in prepared.signature.relations.items()), default=2
    )
    non_tgp_arities: Dict[str, int] = {
        pred: arity
        for pred, arity in prepared.signature.relations.items()
        if pred not in tgps
    }

    output: List[Rule] = []

    def translate_body_atom(
        atom: Atom, leader: Variable, assignment: Dict[Variable, int]
    ) -> "Optional[List[Atom]]":
        """One body atom under one index assignment (None = unsupported)."""
        if atom.is_equality:
            return [atom]
        if atom.pred in tgps and atom.arity >= 2:
            *parents, young = atom.args
            conjunction = [
                Atom(_parent_pred(position), (parent, young))
                for position, parent in enumerate(parents, start=1)
            ]
            conjunction.append(Atom(_tuple_marker(atom.pred), (young,)))
            return conjunction
        indices: List[int] = []
        conjunction = []
        for value in atom.args:
            if value == leader:
                indices.append(0)  # the leading variable itself
            elif isinstance(value, Variable):
                index = assignment[value]
                indices.append(index)
                conjunction.append(Atom(_parent_pred(index), (value, leader)))
            else:
                return None  # constants in guarded rule bodies: unsupported
        conjunction.append(Atom(_monadic_pred(atom.pred, indices), (leader,)))
        return conjunction

    for rule in prepared.rules:
        guard = guard_of(rule)
        if guard is None:  # pragma: no cover - is_guarded checked earlier
            raise ValueError(f"rule has no guard: {rule}")
        guard_variables = [a for a in guard.args if isinstance(a, Variable)]
        if not guard_variables:
            raise ValueError(f"guard without variables: {guard} in {rule}")
        # The paper's leading variable: the rightmost variable of the
        # guard — in a chase match it denotes the youngest element, of
        # which every other body variable is a parent.
        leader = guard_variables[-1]
        others = sorted(rule.body_variables() - {leader})
        for assignment in _index_assignments(others, parent_count):
            # distinct variables may share an index only when they can
            # map to one element; F_i is functional so other instances
            # simply never fire — kept for completeness.
            parent_atoms = [
                Atom(_parent_pred(assignment[variable]), (variable, leader))
                for variable in others
            ]
            translated_body: List[Atom] = list(parent_atoms)
            consistent = True
            for atom in rule.body:
                part = translate_body_atom(atom, leader, assignment)
                if part is None:
                    consistent = False
                    break
                translated_body.extend(part)
            if not consistent:
                continue

            if rule.is_existential:
                head = rule.head_atom
                witness = head.args[-1]
                creation = Atom(_creation_pred(head.pred), (leader, witness))
                output.append(
                    Rule(tuple(translated_body), (creation,), f"{rule.label}-create")
                )
                with_creation = tuple(translated_body) + (creation,)
                output.append(
                    Rule(
                        with_creation,
                        (Atom(_tuple_marker(head.pred), (witness,)),),
                        f"{rule.label}-mark",
                    )
                )
                # (♦): the newborn learns its parents
                for position, parent in enumerate(head.args[:-1], start=1):
                    output.append(
                        Rule(
                            with_creation,
                            (Atom(_parent_pred(position), (parent, witness)),),
                            f"{rule.label}-parent{position}",
                        )
                    )
            else:
                head = rule.head_atom
                part = translate_body_atom(head, leader, assignment)
                if part is None:
                    continue
                # the monadic head is the last atom of the translation;
                # any F-atoms it mentions are already in the body.
                output.append(
                    Rule(tuple(translated_body), (part[-1],), f"{rule.label}-know")
                )

    # Step (vii) transfer rules: knowledge spreads to every element
    # sharing the parents.  Index 0 stands for the knowing element
    # itself, so a source index 0 pins the position's variable to the
    # source element and a target index 0 pins it to the target.
    x_vars = [Variable(f"t{i}") for i in range(parent_count + 1)]
    other = Variable("zOther")
    for pred, arity in sorted(non_tgp_arities.items()):
        index_space = list(
            itertools.product(range(0, parent_count + 1), repeat=arity)
        )
        for source_indices in index_space:
            for target_indices in index_space:
                body: List[Atom] = []
                consistent = True
                for position in range(arity):
                    s_index = source_indices[position]
                    t_index = target_indices[position]
                    if s_index == 0 and t_index == 0:
                        consistent = False  # would force leader == other
                        break
                    if s_index == 0:
                        variable: Variable = leader
                    elif t_index == 0:
                        variable = other
                    else:
                        variable = x_vars[position]
                    if s_index > 0:
                        body.append(Atom(_parent_pred(s_index), (variable, leader)))
                    if t_index > 0:
                        body.append(Atom(_parent_pred(t_index), (variable, other)))
                if not consistent:
                    continue
                body.append(Atom(_monadic_pred(pred, source_indices), (leader,)))
                output.append(
                    Rule(
                        tuple(body),
                        (Atom(_monadic_pred(pred, target_indices), (other,)),),
                        f"transfer-{pred}",
                    )
                )

    return GuardedTranslation(
        theory=Theory(output),
        original=theory,
        parent_count=parent_count,
        tgps=tgps,
        non_tgp_arities=non_tgp_arities,
    )
