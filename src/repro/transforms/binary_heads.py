"""Frontier-1 heads → binary heads (Section 5.1, Theorem 3).

Theorem 3 extends Theorem 1 to theories whose existential TGDs all have
the shape ``Ψ(x̄, y) ⇒ ∃z̄ Φ(y, z̄)`` — a single frontier variable,
arbitrarily many witnesses, arbitrary arity in Φ.  The paper's hint:

    For each such TGD add new relation symbols ``R¹_Φ(y, z1) …
    Rⁿ_Φ(y, zn)`` (n = |z̄|), the binary-headed TGDs
    ``Ψ(x̄, y) ⇒ ∃zi Rⁱ_Φ(y, zi)``, and the datalog rule
    ``R¹_Φ(y, z1) ∧ … ∧ Rⁿ_Φ(y, zn) → Φ(y, z̄)``.

The binarity assumption of Theorem 2's proof is only used for the heads
of existential TGDs, so the whole proof survives this rewriting.

Note the deliberate semantic wrinkle (inherited from the paper): after
the split, the witnesses ``z1 … zn`` are created *independently* (one
per ``Rⁱ_Φ``), and the datalog rule joins every combination — this is a
sound over-approximation whose certain answers agree with the original
on the fragments the paper uses it for (multi-head Φ whose atoms each
use one witness).  The tests pin down exactly that agreement.
"""

from __future__ import annotations

from typing import Dict, List

from ..lf.atoms import Atom
from ..lf.rules import Rule, Theory
from ..lf.terms import Variable


def is_frontier_one(rule: Rule) -> bool:
    """Whether an existential rule has at most one frontier variable."""
    return not rule.is_existential or len(rule.frontier()) <= 1


def split_frontier_one_heads(theory: Theory) -> Theory:
    """Apply the Section 5.1 rewriting to every eligible TGD.

    Rules that are already binary-headed single-witness TGDs (the (♠5)
    shape) and datalog rules pass through unchanged.  A TGD whose
    frontier has more than one variable is rejected — Theorem 3 does
    not cover it (and Section 5.4 explains why no such reduction is
    expected).
    """
    signature = theory.signature
    rewritten: List[Rule] = []
    counter = 0
    for rule in theory.rules:
        if rule.is_datalog:
            rewritten.append(rule)
            continue
        if not is_frontier_one(rule):
            raise ValueError(
                f"rule has more than one frontier variable (beyond "
                f"Theorem 3): {rule}"
            )
        witnesses = sorted(rule.existential_variables())
        frontier = sorted(rule.frontier())
        single_binary = (
            len(rule.head) == 1
            and rule.head[0].arity == 2
            and len(witnesses) == 1
            and rule.head[0].args[1] == witnesses[0]
        )
        if single_binary:
            rewritten.append(rule)
            continue
        if not frontier:
            raise ValueError(
                f"rule has no frontier variable to anchor the split: {rule}"
            )
        anchor = frontier[0]
        link_atoms: List[Atom] = []
        for witness in witnesses:
            link = signature.fresh_relation_name(f"R{counter}")
            counter += 1
            signature = signature.with_relations({link: 2})
            link_atom = Atom(link, (anchor, witness))
            link_atoms.append(link_atom)
            rewritten.append(Rule(rule.body, (link_atom,), f"{rule.label}-w{witness}"))
        rewritten.append(
            Rule(tuple(link_atoms), rule.head, f"{rule.label}-join")
        )
    return Theory(rewritten, signature)
