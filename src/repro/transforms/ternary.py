"""The general → ternary reduction (Section 5.2, Theorem 4).

"Using ternary predicates we can give names to lists of variables, in
the good old Prolog way."  Every atom of arity ``k > 3`` is flattened
into a chain of ternary *list* atoms::

    P(a1, …, ak)   ⟿   P_1(a1, a2, u1), P_2(u1, a3, u2), …,
                        P_{k-2}(u_{k-3}, a_{k-1}, u_{k-2}),
                        P_last(u_{k-2}, a_k)

with fresh list elements ``u_i``.  In rule *bodies* the ``u_i`` are
plain (universally quantified) variables — the original predicate is
"just a view over the real predicates" — while a *head* atom is built
step by step through a cascade of TGDs creating the list nodes, exactly
as in the paper's worked example::

    P(x,y,z,x) ⇒ ∃t R(x,y,z,t)

    becomes   body* ⇒ ∃w1 R_1(x, y, w1)
              body* ∧ R_1(x, y, w1) ⇒ ∃w2 R_2(w1, z, w2)
              body* ∧ R_1(x, y, r) ∧ R_2(r, z, s) ⇒ ∃t R_last(s, t)

(where ``body*`` is the body with its own big atoms viewed through the
list predicates).  Databases are translated by materialising the list
elements as fresh constants ("possibly adding some new elements to
denote lists of elements of D"); queries by the same view expansion as
bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lf.atoms import Atom
from ..lf.queries import ConjunctiveQuery
from ..lf.rules import Rule, Theory
from ..lf.structures import Structure
from ..lf.terms import Constant, Element, Term, Variable


def _chain_predicates(pred: str, arity: int) -> List[str]:
    """The list-predicate names for flattening ``pred/arity`` (k > 3):
    ``k - 2`` ternary links followed by one binary closer."""
    return [f"{pred}__{i}" for i in range(1, arity - 1)] + [f"{pred}__last"]


def flatten_atom(
    atom: Atom, fresh: "Dict[str, int]", stem: str = "u"
) -> List[Atom]:
    """Flatten one atom of arity > 3 into its chain (fresh variables
    for the list nodes, numbered through *fresh* to avoid clashes).

    ``P(a1, …, ak)`` yields ``P__1(a1, a2, u1)``, then
    ``P__i(u_{i-1}, a_{i+1}, u_i)`` for ``i = 2 … k-2``, and finally
    ``P__last(u_{k-2}, ak)``.
    """
    k = atom.arity
    if k <= 3:
        return [atom]
    names = _chain_predicates(atom.pred, k)

    def fresh_var() -> Variable:
        fresh[stem] = fresh.get(stem, 0) + 1
        return Variable(f"{stem}{fresh[stem]}")

    chain: List[Atom] = []
    previous = fresh_var()
    chain.append(Atom(names[0], (atom.args[0], atom.args[1], previous)))
    for index in range(1, k - 2):
        nxt = fresh_var()
        chain.append(Atom(names[index], (previous, atom.args[index + 1], nxt)))
        previous = nxt
    chain.append(Atom(names[-1], (previous, atom.args[k - 1])))
    return chain


def _flatten_body(body: Tuple[Atom, ...], fresh: "Dict[str, int]") -> List[Atom]:
    flattened: List[Atom] = []
    for atom in body:
        flattened.extend(flatten_atom(atom, fresh))
    return flattened


@dataclass
class TernaryReduction:
    """The reduced theory and the translation helpers.

    Attributes
    ----------
    theory:
        The ternary theory T′.
    original:
        The input theory.
    """

    theory: Theory
    original: Theory

    def translate_database(self, database: Structure) -> Structure:
        """Flatten a database, materialising list nodes as constants."""
        translated = Structure()
        counter = [0]
        for fact in database.sorted_facts():
            if fact.arity <= 3:
                translated.add_fact(fact)
                continue
            fresh: Dict[str, int] = {}
            atoms = flatten_atom(fact, fresh)
            table: Dict[Variable, Constant] = {}
            for item in atoms:
                args = []
                for arg in item.args:
                    if isinstance(arg, Variable):
                        named = table.get(arg)
                        if named is None:
                            named = Constant(f"_list{counter[0]}")
                            counter[0] += 1
                            table[arg] = named
                        args.append(named)
                    else:
                        args.append(arg)
                translated.add_fact(Atom(item.pred, tuple(args)))
        for element in database.domain():
            translated.add_element(element)
        return translated

    def translate_query(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """Flatten a query through the same views as rule bodies."""
        fresh: Dict[str, int] = {"u": sum(1 for _ in query.variables())}
        atoms = _flatten_body(query.atoms, fresh)
        return ConjunctiveQuery(atoms, query.free)


def ternary_reduction(theory: Theory) -> TernaryReduction:
    """Reduce an arbitrary single-head theory to a ternary one.

    Rules whose atoms are all of arity ≤ 3 pass through unchanged; big
    bodies are viewed through the list predicates; big heads become the
    paper's creation cascade (datalog heads use plain datalog rules for
    the cascade's last step; existential heads put the real witness in
    the closer).
    """
    rewritten: List[Rule] = []
    for rule in theory.rules:
        if not rule.is_single_head:
            raise ValueError(f"ternary reduction needs single-head rules: {rule}")
        fresh: Dict[str, int] = {}
        body = _flatten_body(rule.body, fresh)
        head = rule.head_atom
        if head.arity <= 3:
            rewritten.append(Rule(body, (head,), rule.label))
            continue
        witnesses = rule.existential_variables()
        chain = flatten_atom(head, fresh, stem="w")
        # Cascade: each link rule sees the body plus the previous links;
        # the list-node variables (and, in the closer, the original
        # witness) are implicitly existential — they are absent from
        # the accumulated body at their creation step.
        accumulated: List[Atom] = list(body)
        for index, link in enumerate(chain):
            rewritten.append(Rule(tuple(accumulated), (link,), f"{rule.label}-t{index}"))
            accumulated.append(link)
    return TernaryReduction(theory=Theory(rewritten), original=theory)
