"""Signatures: relation symbols with arities, plus named constants.

The paper works over finite signatures ``Σ`` consisting of relation
names (unary and binary in the main development) and constants.  Two
operations on signatures recur throughout:

* enlarging a signature with *colors* (unary predicates ``K_h^l``,
  Definitions 6–7) or with names for the elements of a database
  (Section 3.2, "we prefer the elements of D to be named");
* restricting a structure to a sub-signature, written ``C ↾ Σ``.

:class:`Signature` is immutable; enlargement returns new signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..errors import ArityError, NotBinaryError, SignatureError
from .atoms import EQUALITY, Atom
from .terms import Constant


@dataclass(frozen=True)
class Signature:
    """An immutable relational signature.

    Attributes
    ----------
    relations:
        Mapping from relation name to arity (stored as a sorted tuple of
        pairs so the dataclass stays hashable).
    constants:
        The named constants of the signature.
    """

    _relations: Tuple[Tuple[str, int], ...] = field(default=())
    constants: FrozenSet[Constant] = field(default_factory=frozenset)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def make(
        relations: "Mapping[str, int] | Iterable[Tuple[str, int]]" = (),
        constants: Iterable[Constant] = (),
    ) -> "Signature":
        """Build a signature from a relation→arity mapping and constants."""
        if isinstance(relations, Mapping):
            pairs = tuple(sorted(relations.items()))
        else:
            pairs = tuple(sorted(relations))
        names = [name for name, _ in pairs]
        if len(names) != len(set(names)):
            raise SignatureError("duplicate relation name in signature")
        for name, arity in pairs:
            if name == EQUALITY:
                raise SignatureError("'=' is reserved for equality atoms")
            if arity < 0:
                raise SignatureError(f"negative arity for {name}")
        return Signature(pairs, frozenset(constants))

    @staticmethod
    def of_atoms(atoms: Iterable[Atom]) -> "Signature":
        """Infer a signature from a set of atoms (facts or rule atoms).

        Equality atoms contribute no relation; constants occurring in
        the atoms become signature constants.
        """
        relations: Dict[str, int] = {}
        constants = set()
        for item in atoms:
            constants.update(item.constants())
            if item.is_equality:
                continue
            known = relations.get(item.pred)
            if known is None:
                relations[item.pred] = item.arity
            elif known != item.arity:
                raise ArityError(
                    f"{item.pred} used with arities {known} and {item.arity}"
                )
        return Signature.make(relations, constants)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def relations(self) -> Dict[str, int]:
        """Relation name → arity, as a fresh dict."""
        return dict(self._relations)

    def relation_names(self) -> FrozenSet[str]:
        """The set of relation names."""
        return frozenset(name for name, _ in self._relations)

    def arity(self, name: str) -> int:
        """Arity of relation *name*.

        Raises
        ------
        SignatureError
            If the relation is not part of the signature.
        """
        for known, arity in self._relations:
            if known == name:
                return arity
        raise SignatureError(f"unknown relation: {name}")

    def __contains__(self, name: object) -> bool:
        if isinstance(name, Constant):
            return name in self.constants
        return any(known == name for known, _ in self._relations)

    def unary_relations(self) -> FrozenSet[str]:
        """Names of the unary relations."""
        return frozenset(name for name, arity in self._relations if arity == 1)

    def binary_relations(self) -> FrozenSet[str]:
        """Names of the binary relations."""
        return frozenset(name for name, arity in self._relations if arity == 2)

    @property
    def max_arity(self) -> int:
        """Largest arity (0 for an empty signature)."""
        return max((arity for _, arity in self._relations), default=0)

    @property
    def is_binary(self) -> bool:
        """Whether every relation has arity at most 2.

        This is the sense of "binary signature" used throughout the
        paper (Section 2.7): binary and unary relations plus constants.
        """
        return self.max_arity <= 2

    def require_binary(self) -> "Signature":
        """Return ``self``; raise :class:`NotBinaryError` if not binary."""
        if not self.is_binary:
            offenders = [n for n, a in self._relations if a > 2]
            raise NotBinaryError(f"relations of arity > 2: {offenders}")
        return self

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def with_relations(
        self, extra: "Mapping[str, int] | Iterable[Tuple[str, int]]"
    ) -> "Signature":
        """Return an enlarged signature; arities must agree on overlap."""
        merged = self.relations
        items = extra.items() if isinstance(extra, Mapping) else extra
        for name, arity in items:
            known = merged.get(name)
            if known is not None and known != arity:
                raise ArityError(f"{name}: arity {known} vs {arity}")
            merged[name] = arity
        return Signature.make(merged, self.constants)

    def with_constants(self, extra: Iterable[Constant]) -> "Signature":
        """Return a signature enlarged with more named constants."""
        return Signature.make(self.relations, self.constants | frozenset(extra))

    def union(self, other: "Signature") -> "Signature":
        """Least signature containing both operands."""
        return self.with_relations(other._relations).with_constants(other.constants)

    def restrict_to(self, names: Iterable[str]) -> "Signature":
        """Keep only the relations whose name is in *names* (constants kept)."""
        wanted = set(names)
        kept = {name: arity for name, arity in self._relations if name in wanted}
        return Signature.make(kept, self.constants)

    def without_relations(self, names: Iterable[str]) -> "Signature":
        """Drop the relations whose name is in *names*."""
        dropped = set(names)
        kept = {n: a for n, a in self._relations if n not in dropped}
        return Signature.make(kept, self.constants)

    def fresh_relation_name(self, stem: str) -> str:
        """Return *stem* or ``stem_k`` for the least ``k`` avoiding clashes."""
        if stem not in self:
            return stem
        k = 0
        while f"{stem}_{k}" in self:
            k += 1
        return f"{stem}_{k}"

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        rels = ", ".join(f"{name}/{arity}" for name, arity in self._relations)
        cons = ", ".join(sorted(str(c) for c in self.constants))
        return f"Signature({rels}; constants: {cons})"
