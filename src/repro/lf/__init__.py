"""Logical foundations: terms, atoms, structures, queries, rules.

This subpackage is the substrate everything else is built on.  It has
no dependencies outside the standard library.

Quick tour
----------
>>> from repro.lf import parse_theory, parse_structure, parse_query
>>> theory = parse_theory("E(x,y) -> exists z. E(y,z)")
>>> database = parse_structure("E(a,b)")
>>> query = parse_query("E(x,y), E(y,z)")
"""

from .atoms import EQUALITY, Atom, atom, atoms_constants, atoms_variables
from .canonical import (
    FREE_VARIABLE,
    canonical_key,
    canonical_label,
    canonical_query,
    isomorphic_over_constants,
    subsets_containing,
)
from .io import (
    atom_to_text,
    element_from_value,
    element_to_value,
    query_to_text,
    rule_to_text,
    structure_from_dict,
    structure_to_dict,
    theory_to_text,
    to_dot,
)
from .homomorphism import (
    all_answers,
    count_homomorphisms,
    find_homomorphism,
    homomorphisms,
    legacy_homomorphisms,
    planner_disabled,
    satisfies,
    set_planner,
    structure_homomorphism,
    structure_homomorphisms,
    structures_hom_equivalent,
    structures_isomorphic,
)
from .plan import (
    HOM_STATS,
    HomStats,
    PlanCache,
    QueryPlan,
    clear_plan_cache,
    compile_plan,
    plan_for,
)
from .parser import (
    parse_atom,
    parse_fact,
    parse_facts,
    parse_query,
    parse_rule,
    parse_structure,
    parse_theory,
)
from .queries import ConjunctiveQuery, UnionOfConjunctiveQueries, align_free, cq
from .rules import Rule, Theory, rule
from .signature import Signature
from .structures import Structure
from .terms import (
    Constant,
    Element,
    Null,
    NullFactory,
    Term,
    Variable,
    is_constant,
    is_ground,
    is_null,
    is_variable,
)

__all__ = [
    "EQUALITY",
    "FREE_VARIABLE",
    "HOM_STATS",
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "Element",
    "HomStats",
    "Null",
    "NullFactory",
    "PlanCache",
    "QueryPlan",
    "Rule",
    "Signature",
    "Structure",
    "Term",
    "Theory",
    "UnionOfConjunctiveQueries",
    "Variable",
    "align_free",
    "all_answers",
    "atom",
    "atom_to_text",
    "atoms_constants",
    "atoms_variables",
    "canonical_key",
    "canonical_label",
    "canonical_query",
    "clear_plan_cache",
    "compile_plan",
    "count_homomorphisms",
    "cq",
    "element_from_value",
    "element_to_value",
    "find_homomorphism",
    "homomorphisms",
    "legacy_homomorphisms",
    "plan_for",
    "planner_disabled",
    "set_planner",
    "is_constant",
    "is_ground",
    "is_null",
    "is_variable",
    "isomorphic_over_constants",
    "parse_atom",
    "parse_fact",
    "parse_facts",
    "parse_query",
    "parse_rule",
    "parse_structure",
    "parse_theory",
    "query_to_text",
    "rule",
    "rule_to_text",
    "satisfies",
    "structure_from_dict",
    "structure_homomorphism",
    "structure_homomorphisms",
    "structure_to_dict",
    "structures_hom_equivalent",
    "structures_isomorphic",
    "subsets_containing",
    "theory_to_text",
    "to_dot",
]
