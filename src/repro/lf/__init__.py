"""Logical foundations: terms, atoms, structures, queries, rules.

This subpackage is the substrate everything else is built on.  It has
no dependencies outside the standard library.

Quick tour
----------
>>> from repro.lf import parse_theory, parse_structure, parse_query
>>> theory = parse_theory("E(x,y) -> exists z. E(y,z)")
>>> database = parse_structure("E(a,b)")
>>> query = parse_query("E(x,y), E(y,z)")
"""

from .atoms import EQUALITY, Atom, atom, atoms_constants, atoms_variables
from .canonical import (
    FREE_VARIABLE,
    canonical_label,
    canonical_query,
    isomorphic_over_constants,
    subsets_containing,
)
from .io import (
    atom_to_text,
    element_from_value,
    element_to_value,
    query_to_text,
    rule_to_text,
    structure_from_dict,
    structure_to_dict,
    theory_to_text,
    to_dot,
)
from .homomorphism import (
    all_answers,
    count_homomorphisms,
    find_homomorphism,
    homomorphisms,
    satisfies,
    structure_homomorphism,
    structure_homomorphisms,
    structures_hom_equivalent,
    structures_isomorphic,
)
from .parser import (
    parse_atom,
    parse_fact,
    parse_facts,
    parse_query,
    parse_rule,
    parse_structure,
    parse_theory,
)
from .queries import ConjunctiveQuery, UnionOfConjunctiveQueries, cq
from .rules import Rule, Theory, rule
from .signature import Signature
from .structures import Structure
from .terms import (
    Constant,
    Element,
    Null,
    NullFactory,
    Term,
    Variable,
    is_constant,
    is_ground,
    is_null,
    is_variable,
)

__all__ = [
    "EQUALITY",
    "FREE_VARIABLE",
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "Element",
    "Null",
    "NullFactory",
    "Rule",
    "Signature",
    "Structure",
    "Term",
    "Theory",
    "UnionOfConjunctiveQueries",
    "Variable",
    "all_answers",
    "atom",
    "atom_to_text",
    "atoms_constants",
    "atoms_variables",
    "canonical_label",
    "canonical_query",
    "count_homomorphisms",
    "cq",
    "element_from_value",
    "element_to_value",
    "find_homomorphism",
    "homomorphisms",
    "is_constant",
    "is_ground",
    "is_null",
    "is_variable",
    "isomorphic_over_constants",
    "parse_atom",
    "parse_fact",
    "parse_facts",
    "parse_query",
    "parse_rule",
    "parse_structure",
    "parse_theory",
    "query_to_text",
    "rule",
    "rule_to_text",
    "satisfies",
    "structure_from_dict",
    "structure_homomorphism",
    "structure_homomorphisms",
    "structure_to_dict",
    "structures_hom_equivalent",
    "structures_isomorphic",
    "subsets_containing",
    "theory_to_text",
    "to_dot",
]
