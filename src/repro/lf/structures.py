"""Relational structures (database instances).

A :class:`Structure` is a finite set of facts over a signature, plus a
domain that may include isolated elements.  Following the paper's
conventions (Section 1.1, Notations):

* ``C |= R(ā)`` — fact membership — is :meth:`Structure.has_fact`;
* ``C1 |= C2`` — every atom of C2 is an atom of C1 — is
  :meth:`Structure.contains_structure`;
* ``C ↾ A`` (restriction to a set of elements) and ``C ↾ Σ``
  (restriction to a signature) are :meth:`restrict_elements` and
  :meth:`restrict_signature`;
* ``C_con`` / ``C_non`` — the constant and non-constant elements — are
  :meth:`constant_elements` and :meth:`nonconstant_elements`.

The structure maintains hash indexes per predicate and per
(predicate, position, element), which the homomorphism engine and the
chase use to find candidate matches in roughly constant time.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import ArityError, SignatureError
from .atoms import Atom
from .signature import Signature
from .terms import Constant, Element, Null, Variable

#: Shared empty bucket returned by the index views on a miss.
_EMPTY: FrozenSet[Atom] = frozenset()


class Structure:
    """A mutable finite relational structure.

    Parameters
    ----------
    facts:
        Initial facts (ground atoms).
    domain:
        Extra elements that should belong to the domain even if they
        occur in no fact.
    signature:
        The ambient signature.  When omitted it is inferred from the
        facts and grows automatically as new predicates appear.
    strict:
        When ``True``, adding a fact whose predicate is not in the
        signature (or has the wrong arity) raises instead of enlarging.
    """

    #: Class-level backend marker: the compiled matchers in
    #: :mod:`repro.lf.plan` dispatch on it.  The interned columnar
    #: backend (:class:`repro.store.ColumnarStructure`) sets it True.
    is_columnar = False

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        domain: Iterable[Element] = (),
        signature: Optional[Signature] = None,
        strict: bool = False,
    ):
        self._facts: Set[Atom] = set()
        self._domain: Set[Element] = set(domain)
        self._by_pred: Dict[str, Set[Atom]] = {}
        self._by_pred_pos: Dict[Tuple[str, int, Element], Set[Atom]] = {}
        self._probe_count = 0
        self._strict = strict
        self._signature = signature if signature is not None else Signature.make()
        for fact in facts:
            self.add_fact(fact)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_fact(self, fact: Atom) -> bool:
        """Insert *fact*; return ``True`` iff it was new.

        Every argument of the fact joins the domain.  Variables are
        rejected: facts are ground.
        """
        for arg in fact.args:
            if isinstance(arg, Variable):
                raise ValueError(f"fact {fact} contains a variable")
        if fact in self._facts:
            return False
        self._check_signature(fact)
        self._facts.add(fact)
        self._by_pred.setdefault(fact.pred, set()).add(fact)
        for position, arg in enumerate(fact.args):
            self._domain.add(arg)
            self._by_pred_pos.setdefault((fact.pred, position, arg), set()).add(fact)
        return True

    def add_facts(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; return how many were new."""
        return sum(1 for fact in facts if self.add_fact(fact))

    def add_element(self, element: Element) -> None:
        """Add an element to the domain (it may occur in no fact)."""
        self._domain.add(element)

    def discard_fact(self, fact: Atom) -> bool:
        """Remove *fact* if present; return ``True`` iff it was there.

        Elements are never removed from the domain (the paper's
        restriction operators build new structures instead).
        """
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        bucket = self._by_pred.get(fact.pred)
        if bucket is not None:
            bucket.discard(fact)
            if not bucket:
                # Prune emptied buckets: an earlier version kept them
                # forever, and copy() cloned the husks into every
                # descendant — memory bloat across COW search states.
                del self._by_pred[fact.pred]
        for position, arg in enumerate(fact.args):
            key = (fact.pred, position, arg)
            bucket = self._by_pred_pos.get(key)
            if bucket is not None:
                bucket.discard(fact)
                if not bucket:
                    del self._by_pred_pos[key]
        return True

    def _check_signature(self, fact: Atom) -> None:
        if fact.pred in self._signature:
            if self._signature.arity(fact.pred) != fact.arity:
                raise ArityError(
                    f"{fact.pred} has arity {self._signature.arity(fact.pred)}, "
                    f"got {fact.arity}"
                )
        elif self._strict:
            raise SignatureError(f"unknown predicate {fact.pred} (strict mode)")
        else:
            self._signature = self._signature.with_relations({fact.pred: fact.arity})
        new_constants = [c for c in fact.constants() if c not in self._signature.constants]
        if new_constants:
            self._signature = self._signature.with_constants(new_constants)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def signature(self) -> Signature:
        """The (possibly grown) ambient signature."""
        return self._signature

    @property
    def strict(self) -> bool:
        """Whether unknown predicates are rejected instead of adopted."""
        return self._strict

    def facts(self) -> FrozenSet[Atom]:
        """All facts, as a frozen set."""
        return frozenset(self._facts)

    def domain(self) -> FrozenSet[Element]:
        """All domain elements."""
        return frozenset(self._domain)

    def __len__(self) -> int:
        """Number of facts (use :meth:`domain_size` for elements)."""
        return len(self._facts)

    @property
    def domain_size(self) -> int:
        """Number of domain elements."""
        return len(self._domain)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def has_fact(self, fact: Atom) -> bool:
        """The paper's ``C |= R(ā)`` for a ground atom."""
        return fact in self._facts

    __contains__ = has_fact

    def has_element(self, element: Element) -> bool:
        """Whether *element* belongs to the domain."""
        return element in self._domain

    def facts_with_pred(self, pred: str) -> FrozenSet[Atom]:
        """All facts of the given predicate."""
        return frozenset(self.facts_with_pred_view(pred))

    def facts_with(self, pred: str, position: int, element: Element) -> FrozenSet[Atom]:
        """All facts ``pred(... element ...)`` with *element* at *position*."""
        return frozenset(self.facts_with_view(pred, position, element))

    def facts_with_pred_view(self, pred: str) -> "Set[Atom] | FrozenSet[Atom]":
        """The per-predicate index bucket itself, without copying.

        Read-only by contract: callers must not mutate it, and must not
        add or remove facts while iterating it (the hot-path engines —
        the homomorphism matcher and the chase — buffer their insertions
        for exactly this reason).  Use :meth:`facts_with_pred` for an
        independent snapshot.
        """
        self._probe_count += 1
        return self._by_pred.get(pred, _EMPTY)

    def facts_with_view(
        self, pred: str, position: int, element: Element
    ) -> "Set[Atom] | FrozenSet[Atom]":
        """The (predicate, position, element) index bucket, without
        copying.  Same read-only contract as :meth:`facts_with_pred_view`."""
        self._probe_count += 1
        return self._by_pred_pos.get((pred, position, element), _EMPTY)

    def pred_size(self, pred: str) -> int:
        """Number of facts of *pred*, without counting as an index probe.

        Used by the query planner (:mod:`repro.lf.plan`) for ordering
        statistics; statistics reads must not perturb the probe
        counters the benchmarks compare.
        """
        bucket = self._by_pred.get(pred)
        return len(bucket) if bucket else 0

    @property
    def index_probes(self) -> int:
        """Number of index lookups served since construction.

        The chase's :class:`~repro.chase.stats.ChaseStats` reads this
        before and after each round; copies start back at zero.
        """
        return self._probe_count

    def facts_about(self, element: Element) -> FrozenSet[Atom]:
        """All facts mentioning *element* in any position."""
        found: Set[Atom] = set()
        for pred, arity in self._signature.relations.items():
            for position in range(arity):
                found.update(self._by_pred_pos.get((pred, position, element), ()))
        return frozenset(found)

    def predicates_in_use(self) -> FrozenSet[str]:
        """Predicates with at least one fact."""
        return frozenset(pred for pred, bucket in self._by_pred.items() if bucket)

    # ------------------------------------------------------------------
    # Graph view (binary signatures)
    # ------------------------------------------------------------------
    def successors(self, element: Element, pred: Optional[str] = None) -> FrozenSet[Element]:
        """Elements ``d`` with ``pred(element, d)`` (any binary pred if None)."""
        preds = [pred] if pred is not None else sorted(self._signature.binary_relations())
        found: Set[Element] = set()
        for name in preds:
            for fact in self._by_pred_pos.get((name, 0, element), ()):
                if fact.arity == 2:
                    found.add(fact.args[1])
        return frozenset(found)

    def predecessors(self, element: Element, pred: Optional[str] = None) -> FrozenSet[Element]:
        """Elements ``d`` with ``pred(d, element)`` (any binary pred if None)."""
        preds = [pred] if pred is not None else sorted(self._signature.binary_relations())
        found: Set[Element] = set()
        for name in preds:
            for fact in self._by_pred_pos.get((name, 1, element), ()):
                if fact.arity == 2:
                    found.add(fact.args[0])
        return frozenset(found)

    def neighbours(self, element: Element) -> FrozenSet[Element]:
        """Elements sharing a fact with *element* (any arity)."""
        found: Set[Element] = set()
        for fact in self.facts_about(element):
            found.update(arg for arg in fact.args if arg != element)
        return frozenset(found)

    def degree(self, element: Element) -> int:
        """Number of facts mentioning *element* (Lemma 3(iv)'s measure)."""
        return len(self.facts_about(element))

    # ------------------------------------------------------------------
    # Paper notation: C_con, C_non, restrictions, containment
    # ------------------------------------------------------------------
    def constant_elements(self) -> FrozenSet[Constant]:
        """``C_con``: domain elements that are (interpretations of) constants."""
        return frozenset(e for e in self._domain if isinstance(e, Constant))

    def nonconstant_elements(self) -> FrozenSet[Element]:
        """``C_non``: domain elements that are not constants."""
        return frozenset(e for e in self._domain if not isinstance(e, Constant))

    def restrict_elements(self, elements: Iterable[Element]) -> "Structure":
        """``C ↾ A``: the facts whose arguments all lie in *elements*.

        The new structure's domain is exactly ``A ∩ Dom(C)``.
        """
        wanted = set(elements) & self._domain
        kept = [f for f in self._facts if all(a in wanted for a in f.args)]
        return self._from_validated(kept, wanted, self._signature, self._strict)

    def restrict_signature(self, names: Iterable[str]) -> "Structure":
        """``C ↾ Σ``: keep only facts of the given relations.

        The domain is preserved in full, matching the paper's use where
        ``C̄ ↾ Σ = C`` strips colors without losing elements (Def. 7).
        """
        wanted = set(names)
        kept = [f for f in self._facts if f.pred in wanted]
        return self._from_validated(
            kept, set(self._domain), self._signature.restrict_to(wanted), self._strict
        )

    def contains_structure(self, other: "Structure") -> bool:
        """The paper's ``C1 |= C2``: every fact of *other* is a fact here.

        Works across backends: *other* is iterated via the public
        protocol rather than its private fact set.
        """
        return all(self.has_fact(fact) for fact in other)

    def same_facts(self, other: "Structure") -> bool:
        """Fact-set equality (ignores isolated domain elements)."""
        if len(self) != len(other):
            return False
        return all(self.has_fact(fact) for fact in other)

    # ------------------------------------------------------------------
    # Query satisfaction (delegates to the homomorphism engine)
    # ------------------------------------------------------------------
    def satisfies(self, query, binding: Optional[Dict[Variable, Element]] = None) -> bool:
        """``C |= ∃x̄ Φ(x̄)`` for a conjunctive query, under *binding*.

        Free variables not in *binding* are treated as existentially
        quantified, matching the paper's convention (Section 1.1).
        """
        from .homomorphism import satisfies as _satisfies

        return _satisfies(self, query, binding)

    # ------------------------------------------------------------------
    # Copying and presentation
    # ------------------------------------------------------------------
    @classmethod
    def _from_validated(
        cls,
        facts: Iterable[Atom],
        domain: Set[Element],
        signature: Signature,
        strict: bool,
    ) -> "Structure":
        """Build a structure from facts that already passed validation.

        The restriction operators and :meth:`copy` land here: their
        facts were signature-checked when first added, so re-running
        :meth:`_check_signature` per fact (as the constructor does) is
        pure overhead.  Indexes are rebuilt directly.  *domain* is
        owned by the new structure (callers pass a fresh set).
        """
        clone = object.__new__(Structure)
        clone._facts = set()
        clone._domain = domain
        clone._by_pred = {}
        clone._by_pred_pos = {}
        clone._probe_count = 0
        clone._strict = strict
        clone._signature = signature
        fact_set = clone._facts
        by_pred = clone._by_pred
        by_pred_pos = clone._by_pred_pos
        for fact in facts:
            fact_set.add(fact)
            by_pred.setdefault(fact.pred, set()).add(fact)
            for position, arg in enumerate(fact.args):
                domain.add(arg)
                by_pred_pos.setdefault((fact.pred, position, arg), set()).add(fact)
        return clone

    def copy(self) -> "Structure":
        """An independent copy with the same facts, domain and signature.

        Copies the indexes directly instead of re-inserting every fact:
        the facts already passed the signature checks when first added,
        so re-validating them is pure overhead.  This is the branching
        cost of every search/chase state, hence the fast path.  The
        probe counter starts back at zero (see :attr:`index_probes`).
        Empty buckets (impossible after the discard-time pruning, but
        cheap to guard) are not carried over.
        """
        clone = Structure.__new__(Structure)
        clone._facts = set(self._facts)
        clone._domain = set(self._domain)
        clone._by_pred = {
            pred: set(bucket) for pred, bucket in self._by_pred.items() if bucket
        }
        clone._by_pred_pos = {
            key: set(bucket) for key, bucket in self._by_pred_pos.items() if bucket
        }
        clone._probe_count = 0
        clone._strict = self._strict
        clone._signature = self._signature
        return clone

    def sorted_facts(self) -> List[Atom]:
        """Facts in a deterministic order (for display and hashing)."""
        return sorted(self._facts, key=lambda f: (f.pred, tuple(map(str, f.args))))

    def __str__(self) -> str:
        shown = ", ".join(str(f) for f in self.sorted_facts()[:12])
        suffix = ", ..." if len(self) > 12 else ""
        return (
            f"{type(self).__name__}({len(self)} facts, "
            f"{self.domain_size} elements: {shown}{suffix})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return self.facts() == other.facts() and self.domain() == other.domain()

    # Structures are mutable containers with value equality; an earlier
    # version paired that __eq__ with identity hashing, so two equal
    # structures landed in different hash buckets and any set/dict keyed
    # on structures silently admitted duplicates.  They are now
    # explicitly unhashable — key on frozen_key() instead.
    __hash__ = None  # type: ignore[assignment]

    def frozen_key(self) -> Tuple[FrozenSet[Atom], FrozenSet[Element]]:
        """An immutable, hashable snapshot of the structure's value.

        Two structures compare equal (``a == b``) iff their frozen keys
        are equal, so this is the supported way to key a set or dict on
        a structure's current contents.
        """
        return (self.facts(), self.domain())
