"""Conjunctive queries and unions of conjunctive queries.

Throughout the paper "query" means a conjunctive query (CQ) without
negation, and the rewriting Ψ′ of Definition 2 is a union of conjunctive
queries (UCQ).  Free variables that are omitted are read as existentially
quantified (Section 1.1); we mirror that by allowing a CQ to designate
any subset of its variables as *free* and treating the rest as
existential.

Queries are immutable; transformations return new queries.  Equality of
queries is syntactic up to atom-set equality; :meth:`ConjunctiveQuery.canonical`
produces a representative that is stable under variable renaming, which
is what the rewriting engine uses for de-duplication.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from .atoms import Atom, atoms_constants, atoms_variables
from .terms import Constant, Term, Variable


def _atom_sort_key(item: Atom) -> Tuple[str, Tuple[str, ...]]:
    return (item.pred, tuple(str(arg) for arg in item.args))


class ConjunctiveQuery:
    """A conjunctive query: a finite conjunction of atoms.

    Parameters
    ----------
    atoms:
        The atoms of the query.  Duplicates are removed.
    free:
        The designated free variables, in order.  Every free variable
        must occur in some atom (or be constrained by an equality atom).

    Notes
    -----
    The paper's positive types (Definition 3) allow equality atoms of
    the form ``x = c``; these are represented as atoms with the reserved
    predicate ``"="`` and participate in evaluation.
    """

    __slots__ = ("_atoms", "_free", "_hash")

    def __init__(self, atoms: Iterable[Atom], free: Sequence[Variable] = ()):
        unique = sorted(set(atoms), key=_atom_sort_key)
        self._atoms: Tuple[Atom, ...] = tuple(unique)
        self._free: Tuple[Variable, ...] = tuple(free)
        if len(set(self._free)) != len(self._free):
            raise ValueError("repeated free variable")
        all_vars = atoms_variables(self._atoms)
        for var in self._free:
            if var not in all_vars:
                raise ValueError(f"free variable {var} does not occur in the query")
        self._hash = hash((frozenset(self._atoms), self._free))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """The atoms, deterministically ordered."""
        return self._atoms

    @property
    def free(self) -> Tuple[Variable, ...]:
        """The free variables, in declared order."""
        return self._free

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the query."""
        return atoms_variables(self._atoms)

    def existential_variables(self) -> FrozenSet[Variable]:
        """Variables that are not free (read as ∃-quantified)."""
        return self.variables() - frozenset(self._free)

    def constants(self) -> FrozenSet[Constant]:
        """All constants of the query."""
        return atoms_constants(self._atoms)

    @property
    def width(self) -> int:
        """Total number of distinct variables.

        Positive ``n``-types (Definition 3) collect queries ``Ψ(x̄, y)``
        with ``|x̄| < n``, i.e. with at most ``n`` variables in total
        when ``y`` is counted; ``width`` is that total count.
        """
        return len(self.variables())

    @property
    def is_boolean(self) -> bool:
        """Whether the query has no free variables."""
        return not self._free

    def relation_names(self) -> FrozenSet[str]:
        """Predicates used by the query (equality excluded)."""
        return frozenset(a.pred for a in self._atoms if not a.is_equality)

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def substitute(self, mapping: Dict[Variable, Term]) -> "ConjunctiveQuery":
        """Apply a (simultaneous) substitution.

        Free variables mapped to variables stay free (renamed); those
        mapped to constants are dropped from the free tuple (the query
        loses an answer column by design — equality-protected callers
        use :func:`repro.rewriting.subsume.normalize_equalities`).

        Raises
        ------
        ValueError
            When two free variables are mapped to the *same* variable:
            that would silently shrink the free tuple's arity and
            misalign every downstream positional ``zip`` over it.
            Callers that genuinely want to merge answer columns must
            restate the free tuple explicitly via :meth:`with_free`.
        """
        new_atoms = [a.substitute(mapping) for a in self._atoms]
        new_free: List[Variable] = []
        for var in self._free:
            image = mapping.get(var, var)
            if isinstance(image, Variable):
                if image in new_free:
                    raise ValueError(
                        f"substitution collapses free variables: {var} and "
                        f"another free variable both map to {image} "
                        f"(free tuple arity would silently shrink)"
                    )
                new_free.append(image)
        return ConjunctiveQuery(new_atoms, new_free)

    def with_free(self, free: Sequence[Variable]) -> "ConjunctiveQuery":
        """Same atoms, different choice of free variables."""
        return ConjunctiveQuery(self._atoms, free)

    def boolean(self) -> "ConjunctiveQuery":
        """Existentially close all variables."""
        return ConjunctiveQuery(self._atoms, ())

    def conjoin(self, other: "ConjunctiveQuery") -> "ConjunctiveQuery":
        """Conjunction of two queries (free variables concatenated,
        duplicates removed, order preserved)."""
        free = list(self._free)
        for var in other._free:
            if var not in free:
                free.append(var)
        return ConjunctiveQuery(self._atoms + other._atoms, free)

    def rename_apart(self, taken: Iterable[Variable], stem: str = "r") -> "ConjunctiveQuery":
        """Rename variables so they avoid *taken* (for resolution steps)."""
        forbidden = {v.name for v in taken}
        mapping: Dict[Variable, Variable] = {}
        counter = 0
        for var in sorted(self.variables()):
            if var.name in forbidden:
                while f"{stem}{counter}" in forbidden:
                    counter += 1
                fresh = Variable(f"{stem}{counter}")
                counter += 1
                forbidden.add(fresh.name)
                mapping[var] = fresh
        if not mapping:
            return self
        return self.substitute(dict(mapping))

    def canonical(self) -> "ConjunctiveQuery":
        """A renaming-invariant representative.

        Variables are renamed by first occurrence in the deterministic
        atom order; free variables get names ``f0, f1, ...`` (keeping
        their declared order), existential ones ``v0, v1, ...``.  Two
        queries equal up to variable renaming have equal canonical
        forms *provided* the renaming respects the atom ordering — this
        is a cheap sound (never merges distinct queries) but incomplete
        normal form; the rewriting engine supplements it with
        homomorphic-equivalence checks.
        """
        mapping: Dict[Variable, Variable] = {}
        for index, var in enumerate(self._free):
            mapping[var] = Variable(f"f{index}")
        counter = 0
        for item in self._atoms:
            for arg in item.args:
                if isinstance(arg, Variable) and arg not in mapping:
                    mapping[arg] = Variable(f"v{counter}")
                    counter += 1
        # Renaming may change the atom sort order, which may enable a
        # better (smaller) renaming; iterate to a fixpoint.
        current = self.substitute(mapping)
        for _ in range(3):
            mapping = {}
            for index, var in enumerate(current._free):
                mapping[var] = Variable(f"f{index}")
            counter = 0
            for item in current._atoms:
                for arg in item.args:
                    if isinstance(arg, Variable) and arg not in mapping:
                        mapping[arg] = Variable(f"v{counter}")
                        counter += 1
            renamed = current.substitute(mapping)
            if renamed == current:
                break
            current = renamed
        return current

    # ------------------------------------------------------------------
    # Identity and presentation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            frozenset(self._atoms) == frozenset(other._atoms)
            and self._free == other._free
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        body = " & ".join(str(a) for a in self._atoms) or "true"
        if self._free:
            head = ", ".join(str(v) for v in self._free)
            return f"({head}) <- {body}"
        return body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CQ[{self}]"


def align_free(
    query: ConjunctiveQuery, target_free: Sequence[Variable]
) -> ConjunctiveQuery:
    """Rename *query*'s free tuple to *target_free*, capture-avoidingly.

    A bare ``query.substitute(dict(zip(query.free, target_free)))`` is
    wrong whenever a *target* name already occurs existentially in the
    query: aligning ``∃x R(x, z)`` (free ``(z,)``) to the tuple
    ``(x,)`` would produce ``R(x, x)``, silently identifying the answer
    variable with the witness and dropping answers.  This helper first
    renames any clashing existential variables apart, then applies the
    (simultaneous, hence swap-safe) free renaming.
    """
    target = tuple(target_free)
    if len(target) != len(query.free):
        raise ValueError(
            f"cannot align free tuple of arity {len(query.free)} "
            f"to arity {len(target)}"
        )
    if query.free == target:
        return query
    clashes = (query.variables() - frozenset(query.free)) & set(target)
    if clashes:
        taken = {v.name for v in query.variables()} | {v.name for v in target}
        renaming: Dict[Variable, Variable] = {}
        counter = 0
        for var in sorted(clashes):
            while f"e{counter}" in taken:
                counter += 1
            fresh = Variable(f"e{counter}")
            taken.add(fresh.name)
            renaming[var] = fresh
        query = query.substitute(dict(renaming))
    return query.substitute(dict(zip(query.free, target)))


class UnionOfConjunctiveQueries:
    """A finite union (disjunction) of conjunctive queries.

    All disjuncts must agree on their free-variable tuple length; the
    free variables of the union are those of the first disjunct (each
    disjunct is rewritten to use them).
    """

    __slots__ = ("_disjuncts", "_free")

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery]):
        pool = list(disjuncts)
        if not pool:
            self._disjuncts: Tuple[ConjunctiveQuery, ...] = ()
            self._free: Tuple[Variable, ...] = ()
            return
        lead = pool[0]
        aligned: List[ConjunctiveQuery] = []
        for cq in pool:
            if len(cq.free) != len(lead.free):
                raise ValueError("disjuncts disagree on the number of free variables")
            if cq.free != lead.free:
                # capture-avoiding: see align_free (a bare zip-substitution
                # captures existential variables named after lead's frees)
                cq = align_free(cq, lead.free)
            aligned.append(cq)
        unique: List[ConjunctiveQuery] = []
        seen = set()
        for cq in aligned:
            marker = cq.canonical()
            if marker not in seen:
                seen.add(marker)
                unique.append(cq)
        self._disjuncts = tuple(unique)
        self._free = lead.free

    @property
    def disjuncts(self) -> Tuple[ConjunctiveQuery, ...]:
        """The disjuncts (de-duplicated up to canonical renaming)."""
        return self._disjuncts

    @property
    def free(self) -> Tuple[Variable, ...]:
        """The shared free-variable tuple."""
        return self._free

    def variables(self) -> FrozenSet[Variable]:
        """All variables across disjuncts."""
        seen = set()
        for cq in self._disjuncts:
            seen.update(cq.variables())
        return frozenset(seen)

    @property
    def max_width(self) -> int:
        """Largest number of variables in any disjunct.

        This is the quantity the paper calls ``|Var(Ψ′)|`` when defining
        κ in Section 3.3.
        """
        return max((cq.width for cq in self._disjuncts), default=0)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._disjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionOfConjunctiveQueries):
            return NotImplemented
        mine = {cq.canonical() for cq in self._disjuncts}
        theirs = {cq.canonical() for cq in other._disjuncts}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(frozenset(cq.canonical() for cq in self._disjuncts))

    def __str__(self) -> str:
        return " | ".join(f"({cq})" for cq in self._disjuncts) or "false"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UCQ[{self}]"


def cq(atoms: Iterable[Atom], free: Sequence[Variable] = ()) -> ConjunctiveQuery:
    """Convenience constructor for :class:`ConjunctiveQuery`."""
    return ConjunctiveQuery(atoms, free)
