"""Homomorphism search: the query-evaluation engine.

Everything in the paper runs on homomorphisms: ``C |= Φ`` for a CQ Φ is
the existence of a homomorphism from Φ's atoms to C; positive types are
sets of CQs; the finite counter-model contains a homomorphic image of
the chase.  Evaluation runs through the compiled join plans of
:mod:`repro.lf.plan` by default (static atom ordering, per-atom index
selection, iterative matching, process-wide plan cache); the original
recursive backtracking matcher is kept as
:func:`legacy_homomorphisms` for ablation benchmarks and the
planned-vs-legacy parity property tests, and can be forced globally
with :func:`planner_disabled`.

Public entry points
-------------------
``homomorphisms``          — generate all satisfying bindings of a set of atoms
``legacy_homomorphisms``   — the same, on the uncompiled backtracking path
``find_homomorphism``      — first satisfying binding or ``None``
``satisfies``              — boolean satisfaction of a CQ (under a partial binding)
``all_answers``            — the answer relation of a CQ over a structure
``structure_homomorphism`` — homomorphism between two structures (constants fixed)
``structures_hom_equivalent`` / ``structures_isomorphic`` — comparisons
``planner_disabled``       — context manager forcing the legacy path
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .atoms import Atom
from .plan import plan_for
from .queries import ConjunctiveQuery, UnionOfConjunctiveQueries, align_free
from .structures import Structure
from .terms import Constant, Element, Null, Variable

Binding = Dict[Variable, Element]

#: Module switch: ``True`` routes evaluation through compiled plans.
_USE_PLANNER = True


def set_planner(enabled: bool) -> bool:
    """Enable/disable the planned path globally; returns the old value."""
    global _USE_PLANNER
    previous = _USE_PLANNER
    _USE_PLANNER = bool(enabled)
    return previous


@contextmanager
def planner_disabled():
    """Force the legacy backtracking matcher within the block."""
    previous = set_planner(False)
    try:
        yield
    finally:
        set_planner(previous)


def _resolve_equalities(
    atoms: Sequence[Atom], binding: Binding
) -> "Optional[Tuple[List[Atom], Binding, Dict[Variable, Variable]]]":
    """Process ``=`` atoms: bind variables, check ground equalities.

    Returns the relational atoms (with forced substitutions applied),
    the extended binding, and the variable-to-variable renaming induced
    by unresolved ``x = y`` equalities (callers must copy the
    representative's value back onto the renamed variables so that every
    original variable appears in the produced bindings), or ``None`` on
    an inconsistency.
    """
    relational = [a for a in atoms if not a.is_equality]
    equalities = [a for a in atoms if a.is_equality]
    binding = dict(binding)
    # Fixpoint: each pass may ground more equalities.
    changed = True
    while changed and equalities:
        changed = False
        remaining: List[Atom] = []
        for eq in equalities:
            if eq.arity != 2:
                raise ValueError(f"equality atom must be binary: {eq}")
            left, right = eq.args
            left = binding.get(left, left) if isinstance(left, Variable) else left
            right = binding.get(right, right) if isinstance(right, Variable) else right
            if isinstance(left, Variable) and isinstance(right, Variable):
                if left == right:
                    changed = True
                    continue
                remaining.append(Atom("=", (left, right)))
            elif isinstance(left, Variable):
                binding[left] = right  # type: ignore[assignment]
                changed = True
            elif isinstance(right, Variable):
                binding[right] = left  # type: ignore[assignment]
                changed = True
            else:
                if left != right:
                    return None
                changed = True
        equalities = remaining
    # Unresolved var=var equalities: unify by renaming one to the other.
    rename: Dict[Variable, Variable] = {}
    for eq in equalities:
        left, right = eq.args
        while left in rename:
            left = rename[left]
        while right in rename:
            right = rename[right]
        if left != right:
            rename[left] = right
    flattened: Dict[Variable, Variable] = {}
    if rename:
        def _chase(var):
            while isinstance(var, Variable) and var in rename:
                var = rename[var]
            return var
        relational = [
            Atom(a.pred, tuple(_chase(t) if isinstance(t, Variable) else t for t in a.args))
            for a in relational
        ]
        for var in list(binding):
            target = _chase(var)
            if target != var and isinstance(target, Variable):
                if target in binding and binding[target] != binding[var]:
                    return None
                binding[target] = binding[var]
        flattened = {var: _chase(var) for var in rename}
    return relational, binding, flattened


def _candidates(structure: Structure, item: Atom, binding: Binding) -> Iterable[Atom]:
    """Facts that could match *item* under *binding*, via the best index.

    Returns live index views (no copying — this is the innermost loop of
    every engine), so callers that mutate the structure between yielded
    bindings must buffer their insertions; the chase and the semi-naive
    saturator do.
    """
    best: "Optional[Iterable[Atom]]" = None
    best_size = -1
    for position, arg in enumerate(item.args):
        value: "Optional[Element]" = None
        if isinstance(arg, Variable):
            if arg in binding:
                value = binding[arg]
        else:
            value = arg  # constant in the query: must match itself
        if value is not None:
            bucket = structure.facts_with_view(item.pred, position, value)
            if best is None or len(bucket) < best_size:
                best = bucket
                best_size = len(bucket)
                if not bucket:
                    return ()
    if best is not None:
        return best
    return structure.facts_with_pred_view(item.pred)


def _match(item: Atom, fact: Atom, binding: Binding) -> "Optional[Binding]":
    """Try to match a query atom against a fact; return the extension."""
    if item.pred != fact.pred or item.arity != fact.arity:
        return None
    extension: "Optional[Binding]" = None
    local = binding
    for arg, value in zip(item.args, fact.args):
        if isinstance(arg, Variable):
            bound = local.get(arg)
            if bound is None:
                if extension is None:
                    extension = dict(binding)
                    local = extension
                local[arg] = value
            elif bound != value:
                return None
        elif arg != value:
            return None
    return local if extension is not None else dict(binding)


def _boundness(item: Atom, binding: Binding) -> Tuple[int, int]:
    """Heuristic score: (number of unbound variables, -number of bound args)."""
    unbound = 0
    bound = 0
    for arg in item.args:
        if isinstance(arg, Variable) and arg not in binding:
            unbound += 1
        else:
            bound += 1
    return (unbound, -bound)


def homomorphisms(
    atoms: Sequence[Atom],
    structure: Structure,
    binding: "Optional[Binding]" = None,
) -> Iterator[Binding]:
    """Generate every binding of the variables of *atoms* into
    *structure* that makes all atoms facts of the structure.

    Constants in the atoms must match themselves.  The optional
    *binding* pre-binds some variables.  Equality atoms are resolved
    up-front.  Evaluation runs on the compiled-plan path
    (:mod:`repro.lf.plan`) unless :func:`planner_disabled` is active;
    both paths generate the same binding set (property-tested).
    """
    resolved = _resolve_equalities(list(atoms), binding or {})
    if resolved is None:
        return
    todo, start, renamed = resolved

    if _USE_PLANNER:
        atom_vars: Set[Variable] = set()
        for item in todo:
            atom_vars.update(item.variable_set())
        prebound = frozenset(var for var in start if var in atom_vars)
        plan = plan_for(tuple(todo), prebound, structure)
        found_bindings: Iterator[Binding] = plan.bindings(structure, start)
    else:
        found_bindings = _legacy_search(todo, structure, start)

    for found in found_bindings:
        for original, representative in renamed.items():
            if representative in found:
                found[original] = found[representative]
        yield found


def _legacy_search(
    todo: List[Atom], structure: Structure, start: Binding
) -> Iterator[Binding]:
    """The original recursive matcher: per-node ``min()`` re-scoring and
    per-extension dict copies.  Kept for parity tests and ablations."""

    def search(pending: List[Atom], current: Binding) -> Iterator[Binding]:
        if not pending:
            yield dict(current)
            return
        index = min(range(len(pending)), key=lambda i: _boundness(pending[i], current))
        item = pending[index]
        rest = pending[:index] + pending[index + 1:]
        for fact in _candidates(structure, item, current):
            extended = _match(item, fact, current)
            if extended is not None:
                yield from search(rest, extended)

    return search(todo, start)


def legacy_homomorphisms(
    atoms: Sequence[Atom],
    structure: Structure,
    binding: "Optional[Binding]" = None,
) -> Iterator[Binding]:
    """:func:`homomorphisms` on the uncompiled backtracking path.

    The reference implementation the planned matcher must agree with;
    used by the parity property suite and the ``BENCH_hom`` ablation.
    """
    resolved = _resolve_equalities(list(atoms), binding or {})
    if resolved is None:
        return
    todo, start, renamed = resolved
    for found in _legacy_search(todo, structure, start):
        for original, representative in renamed.items():
            if representative in found:
                found[original] = found[representative]
        yield found


def find_homomorphism(
    atoms: Sequence[Atom],
    structure: Structure,
    binding: "Optional[Binding]" = None,
) -> "Optional[Binding]":
    """First satisfying binding, or ``None``."""
    for found in homomorphisms(atoms, structure, binding):
        return found
    return None


def satisfies(
    structure: Structure,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
    binding: "Optional[Binding]" = None,
) -> bool:
    """``C |= ∃ (unbound vars) query`` under the partial *binding*."""
    if isinstance(query, UnionOfConjunctiveQueries):
        return any(satisfies(structure, cq, binding) for cq in query)
    return find_homomorphism(query.atoms, structure, binding) is not None


def all_answers(
    structure: Structure,
    query: "ConjunctiveQuery | UnionOfConjunctiveQueries",
) -> "Set[Tuple[Element, ...]]":
    """The answer relation: tuples for the free variables.

    For a Boolean query the result is ``{()}`` if satisfied, else ``∅``.
    """
    if isinstance(query, UnionOfConjunctiveQueries):
        answers: Set[Tuple[Element, ...]] = set()
        for cq in query:
            # Capture-avoiding alignment: a bare zip-substitution turns
            # ∃x R(x,z) with free (z,) into R(x,x) when aligned to
            # (x,), silently dropping answers.
            aligned = align_free(cq, query.free) if cq.free != query.free else cq
            answers.update(all_answers(structure, aligned))
        return answers
    answers = set()
    for binding in homomorphisms(query.atoms, structure):
        answers.add(tuple(binding[v] for v in query.free))
    return answers


# ----------------------------------------------------------------------
# Structure-to-structure homomorphisms
# ----------------------------------------------------------------------

def _structure_as_query(
    source: Structure, fixed: "Optional[Dict[Element, Element]]" = None
) -> Tuple[List[Atom], Dict[Variable, Element], Dict[Element, Variable]]:
    """View *source* as a CQ: non-constant elements become variables.

    Returns the query atoms, the pre-binding induced by *fixed*, and the
    element→variable table.
    """
    table: Dict[Element, Variable] = {}
    prebound: Dict[Variable, Element] = {}

    def var_of(element: Element) -> Variable:
        found = table.get(element)
        if found is None:
            found = Variable(f"_e{len(table)}")
            table[element] = found
        return found

    atoms: List[Atom] = []
    for fact in source.sorted_facts():
        args = []
        for arg in fact.args:
            if isinstance(arg, Constant):
                args.append(arg)
            else:
                args.append(var_of(arg))
        atoms.append(Atom(fact.pred, tuple(args)))
    if fixed:
        for element, image in fixed.items():
            if isinstance(element, Constant):
                if element != image:
                    raise ValueError("constants must be fixed to themselves")
                continue
            prebound[var_of(element)] = image
    return atoms, prebound, table


def structure_homomorphisms(
    source: Structure,
    target: Structure,
    fixed: "Optional[Dict[Element, Element]]" = None,
) -> Iterator[Dict[Element, Element]]:
    """Generate homomorphisms ``source → target`` as element mappings.

    Constants are mapped to themselves (and must exist in *target* as
    far as the facts require).  *fixed* pre-commits some non-constant
    elements.  Isolated elements of *source* (in no fact) are mapped to
    an arbitrary element of *target* only if requested via *fixed*;
    otherwise they are left out of the mapping.
    """
    atoms, prebound, table = _structure_as_query(source, fixed)
    for binding in homomorphisms(atoms, target, prebound):
        mapping: Dict[Element, Element] = {}
        for element, variable in table.items():
            mapping[element] = binding[variable]
        for constant in source.constant_elements():
            mapping.setdefault(constant, constant)
        yield mapping


def structure_homomorphism(
    source: Structure,
    target: Structure,
    fixed: "Optional[Dict[Element, Element]]" = None,
) -> "Optional[Dict[Element, Element]]":
    """First homomorphism ``source → target``, or ``None``."""
    for mapping in structure_homomorphisms(source, target, fixed):
        return mapping
    return None


def structures_hom_equivalent(left: Structure, right: Structure) -> bool:
    """Homomorphic equivalence (maps both ways, constants fixed)."""
    return (
        structure_homomorphism(left, right) is not None
        and structure_homomorphism(right, left) is not None
    )


def structures_isomorphic(
    left: Structure,
    right: Structure,
    fixed: "Optional[Dict[Element, Element]]" = None,
) -> bool:
    """Isomorphism test by searching for a bijective homomorphism whose
    inverse is also a homomorphism.

    Exponential in general; intended for the small local structures the
    paper compares (``C ↾ (P(e) ∪ C_con)`` in Definition 14).
    """
    if len(left.facts()) != len(right.facts()):
        return False
    if left.domain_size != right.domain_size:
        return False
    if left.constant_elements() != right.constant_elements():
        return False
    for mapping in structure_homomorphisms(left, right, fixed):
        values = list(mapping.values())
        if len(set(values)) != len(values):
            continue  # not injective
        image_facts = {fact.substitute(mapping) for fact in left.facts()}
        if len(image_facts) != len(left.facts()):
            continue  # two facts collapsed (cannot happen when injective)
        # Injective + equal fact counts + image ⊆ right ⟹ image = right,
        # so the inverse is a homomorphism too: this is an isomorphism.
        if all(right.has_fact(fact) for fact in image_facts):
            return True
    return False


def count_homomorphisms(
    atoms: Sequence[Atom],
    structure: Structure,
    limit: "Optional[int]" = None,
) -> int:
    """Number of satisfying bindings (capped at *limit* if given)."""
    total = 0
    for _ in homomorphisms(atoms, structure):
        total += 1
        if limit is not None and total >= limit:
            return total
    return total
