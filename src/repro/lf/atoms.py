"""Atoms: relational facts and rule/query atoms.

An :class:`Atom` is a predicate name applied to a tuple of arguments.
In rules and queries the arguments are variables and constants; in
structures ("facts") the arguments are domain elements (constants and
nulls).  The same class serves both roles, which keeps the substitution
and homomorphism machinery uniform.

The reserved predicate name ``"="`` encodes the equality atoms ``x = c``
that the paper allows inside positive types (Definition 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Tuple

from .terms import Constant, Element, Null, Term, Variable, is_ground

#: Reserved predicate name for equality atoms ``x = c`` (Definition 3).
EQUALITY = "="


@dataclass(frozen=True, order=True)
class Atom:
    """A predicate applied to arguments.

    Attributes
    ----------
    pred:
        Predicate (relation) name.  ``"="`` is reserved for equality.
    args:
        The argument tuple.  Variables and constants for rule/query
        atoms; constants and nulls for facts.
    """

    pred: str
    args: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.pred:
            raise ValueError("predicate name must be non-empty")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    def __hash__(self) -> int:
        # Cached: facts live in sets and index buckets, and the
        # generated dataclass hash would re-hash the argument tuple
        # (and every term in it) on each membership test.  Consistent
        # with the generated __eq__ (same pred, same args).
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.pred, self.args))
            object.__setattr__(self, "_hash", value)
            return value

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def is_equality(self) -> bool:
        """Whether this is an equality atom ``x = c``."""
        return self.pred == EQUALITY

    def variables(self) -> Iterator[Variable]:
        """Yield the variables occurring in the atom (with repetitions)."""
        for arg in self.args:
            if isinstance(arg, Variable):
                yield arg

    def constants(self) -> Iterator[Constant]:
        """Yield the constants occurring in the atom (with repetitions)."""
        for arg in self.args:
            if isinstance(arg, Constant):
                yield arg

    def nulls(self) -> Iterator[Null]:
        """Yield the nulls occurring in the atom (with repetitions)."""
        for arg in self.args:
            if isinstance(arg, Null):
                yield arg

    def variable_set(self) -> "frozenset[Variable]":
        """The set of variables occurring in the atom."""
        return frozenset(self.variables())

    @property
    def is_fact(self) -> bool:
        """Whether every argument is a domain element (no variables)."""
        return all(is_ground(arg) for arg in self.args)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def substitute(self, mapping: Dict[object, object]) -> "Atom":
        """Apply *mapping* to the arguments, leaving unmapped ones alone.

        The mapping may send variables to terms or elements, and (for
        quotient projections) elements to elements.
        """
        return Atom(self.pred, tuple(mapping.get(arg, arg) for arg in self.args))

    def rename_predicate(self, new_pred: str) -> "Atom":
        """Return the same atom under a different predicate name."""
        return Atom(new_pred, self.args)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if self.is_equality and len(self.args) == 2:
            return f"{self.args[0]} = {self.args[1]}"
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.pred}({rendered})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Atom({self})"


def atom(pred: str, *args: object) -> Atom:
    """Convenience constructor: ``atom("E", x, y)``."""
    return Atom(pred, tuple(args))


def atoms_variables(atoms: Iterable[Atom]) -> "frozenset[Variable]":
    """The set of variables occurring in *atoms*."""
    seen = set()
    for item in atoms:
        seen.update(item.variables())
    return frozenset(seen)


def atoms_constants(atoms: Iterable[Atom]) -> "frozenset[Constant]":
    """The set of constants occurring in *atoms*."""
    seen = set()
    for item in atoms:
        seen.update(item.constants())
    return frozenset(seen)
