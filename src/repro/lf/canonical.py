"""Canonical queries of substructures, and canonical labels.

Two constructions used throughout the positive-type machinery:

* the **canonical query** of ``C ↾ S`` around a distinguished element
  ``d``: every fact of C whose arguments lie in S becomes an atom, with
  non-constant elements turned into variables (``d`` becoming the free
  variable ``y``) and constants kept.  The key property (proved in
  :mod:`repro.ptypes.ptype`) is that the canonical queries of the
  ≤ n-element subsets around ``d`` *generate* the positive n-type of
  ``d`` under query homomorphism.

* a **canonical label** of a small structure: a string invariant under
  isomorphisms that fix the constants — used as the *lightness* of a
  color in natural colorings (Definition 14 requires equal lightness to
  imply isomorphic ``C ↾ (P(e) ∪ C_con)``).
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .atoms import Atom
from .queries import ConjunctiveQuery
from .structures import Structure
from .terms import Constant, Element, Variable

#: The free variable of canonical type queries — the paper's ``y``.
FREE_VARIABLE = Variable("y")


def canonical_query(
    structure: Structure,
    elements: Iterable[Element],
    distinguished: Element,
    relation_names: "Optional[Iterable[str]]" = None,
    skip_constant_only: bool = False,
) -> ConjunctiveQuery:
    """The canonical CQ of ``structure ↾ elements`` around *distinguished*.

    Parameters
    ----------
    structure:
        The ambient structure.
    elements:
        The subset S (must contain *distinguished*).
    distinguished:
        The element that becomes the free variable ``y``.  If it is a
        constant, the query additionally contains the equality atom
        ``y = c`` — this is how Remark 1's separation of constants is
        realised.
    relation_names:
        Restrict to these relations (the paper's ``Σ`` inside ``Σ̄``,
        Definition 8 computes types over Σ only, ignoring colors).
    skip_constant_only:
        Drop atoms whose arguments are all constants (and differ from
        the distinguished element).  The positive-type machinery sets
        this: as the paper notes in Section 4, atoms between constants
        are irrelevant because the constant part of the structure is
        unchanged by projections.

    Returns
    -------
    ConjunctiveQuery
        With exactly one free variable ``y``; all other elements of S
        that are not constants become existential variables.
    """
    chosen = set(elements)
    if distinguished not in chosen:
        raise ValueError("distinguished element must belong to the subset")
    allowed = set(relation_names) if relation_names is not None else None

    table: Dict[Element, object] = {}
    counter = 0
    for element in sorted(chosen, key=str):
        if element == distinguished:
            table[element] = FREE_VARIABLE
        elif isinstance(element, Constant):
            table[element] = element
        else:
            table[element] = Variable(f"x{counter}")
            counter += 1

    atoms: List[Atom] = []
    for fact in structure.facts():
        if allowed is not None and fact.pred not in allowed:
            continue
        if not all(arg in chosen for arg in fact.args):
            continue
        if skip_constant_only and all(
            isinstance(arg, Constant) and arg != distinguished for arg in fact.args
        ):
            continue
        atoms.append(Atom(fact.pred, tuple(table[arg] for arg in fact.args)))
    if isinstance(distinguished, Constant):
        atoms.append(Atom("=", (FREE_VARIABLE, distinguished)))
    if not any(FREE_VARIABLE in a.variable_set() for a in atoms):
        # The distinguished element occurs in no selected fact; the type
        # contribution is the trivial query "y exists", which we encode
        # as the empty conjunction with a free variable obtained from a
        # vacuous equality y = y (always true).
        atoms.append(Atom("=", (FREE_VARIABLE, FREE_VARIABLE)))
    return ConjunctiveQuery(atoms, (FREE_VARIABLE,))


def subsets_containing(
    pool: Iterable[Element],
    anchor: Element,
    max_size: int,
) -> "Iterable[FrozenSet[Element]]":
    """All subsets of *pool* ∪ {anchor} of size ≤ *max_size* containing
    *anchor*, enumerated without repetition (anchor excluded from pool).

    The enumeration is depth-first over a sorted pool, so it is
    deterministic.
    """
    others = sorted((e for e in pool if e != anchor), key=str)
    chosen: List[Element] = []

    def walk(start: int, remaining: int):
        yield frozenset([anchor, *chosen])
        if remaining == 0:
            return
        for index in range(start, len(others)):
            chosen.append(others[index])
            yield from walk(index + 1, remaining - 1)
            chosen.pop()

    yield from walk(0, max_size - 1)


def connected_subsets_containing(
    structure: Structure,
    anchor: Element,
    max_size: int,
    relation_names: "Optional[Iterable[str]]" = None,
) -> "Iterable[FrozenSet[Element]]":
    """Connected subsets of the non-constant elements containing *anchor*.

    Two non-constant elements are adjacent when they co-occur in a fact
    (of an allowed relation); constants never connect anything — in a
    query, constants are fixed pins, so components joined only through
    a constant are independently satisfiable.  Enumerating connected
    subsets (instead of all subsets) is exactly what the positive-type
    machinery needs; see :mod:`repro.ptypes.ptype` for the argument.

    Uses the standard extension enumeration: a subset is grown only
    through neighbours of its members, and elements already *declined*
    at an earlier branch are excluded, so each subset appears once.
    """
    allowed = frozenset(relation_names) if relation_names is not None else None

    def neighbours(element: Element) -> "List[Element]":
        found = set()
        for fact in structure.facts_about(element):
            if allowed is not None and fact.pred not in allowed:
                continue
            for arg in fact.args:
                if arg != element and not isinstance(arg, Constant):
                    found.add(arg)
        return sorted(found, key=str)

    # The anchor itself is always connectable — even when it is a
    # constant: in the canonical query the distinguished element becomes
    # the *variable* y, so connectivity through it is real connectivity.
    # All other constants stay cuts (they are pins in the query).
    chosen: List[Element] = [anchor]
    banned: Set[Element] = {anchor}

    def frontier() -> List[Element]:
        found = set()
        for member in chosen:
            for neighbour in neighbours(member):
                if neighbour not in banned:
                    found.add(neighbour)
        return sorted(found, key=str)

    def walk(remaining: int):
        yield frozenset(chosen)
        if remaining == 0:
            return
        candidates = frontier()
        declined: List[Element] = []
        for candidate in candidates:
            chosen.append(candidate)
            banned.add(candidate)
            yield from walk(remaining - 1)
            chosen.pop()
            declined.append(candidate)
        for candidate in declined:
            banned.discard(candidate)

    yield from walk(max_size - 1)


def canonical_label(structure: Structure) -> str:
    """A string invariant under isomorphisms fixing the constants.

    Non-constant elements are assigned indices; the label is the
    lexicographically least rendering of the fact set over all
    assignments.  Exponential in the number of non-constant elements —
    fine for the paper's use (``P(e) ∪ C_con`` has at most two
    non-constant elements in a VTDAG skeleton, Definition 10/11).
    """
    nonconstants = sorted(structure.nonconstant_elements(), key=str)
    if len(nonconstants) > 7:
        raise ValueError(
            f"canonical_label is exponential; got {len(nonconstants)} "
            "non-constant elements (max 7)"
        )

    def render(order: Sequence[Element]) -> str:
        table = {element: f"#{i}" for i, element in enumerate(order)}
        lines = []
        for fact in structure.facts():
            args = ",".join(
                table.get(arg, str(arg)) if not isinstance(arg, Constant) else f"c:{arg}"
                for arg in fact.args
            )
            lines.append(f"{fact.pred}({args})")
        lines.sort()
        return ";".join(lines)

    if not nonconstants:
        return render(())
    return min(render(order) for order in permutations(nonconstants))


def _refine_classes(
    structure: Structure, nonconstants: "Sequence[Element]"
) -> "List[List[Element]]":
    """Partition *nonconstants* by iterated neighbourhood colors.

    Classic color refinement (1-WL) with constants as fixed anchors:
    the initial color of an element is the multiset of fact shapes it
    occurs in (constants spelled out, other non-constants blanked);
    each round re-colors by the neighbours' current colors, until the
    partition stops splitting.  Elements in different classes cannot be
    exchanged by any isomorphism fixing the constants, so a canonical
    form only needs to consider permutations *within* classes.

    The class order returned is itself canonical (colors are ranks of
    canonically-sorted view values, so the final color order is the
    same for isomorphic structures), so renderings may rely on it.
    """
    # Elements are mapped to dense indices up front so the refinement
    # rounds touch only ints and lists — Element hashes (dataclass
    # field hashes) are paid once here, not once per lookup per round.
    #
    # Per-index templates, built once: each incident fact becomes a
    # ``(skeleton, neighbours)`` pair where the skeleton spells out the
    # predicate plus the constant/null positions, and *neighbours* lists
    # the fact's non-constant arguments (as indices) in position order.
    # A round's view of an element is then just the skeletons with the
    # current neighbour colors appended — no per-round arg inspection.
    total = len(nonconstants)
    index: Dict[Element, int] = {element: i for i, element in enumerate(nonconstants)}
    templates: List[List[Tuple]] = [[] for _ in range(total)]
    for fact in structure.facts():
        skeleton: List[str] = [fact.pred]
        nulls: List[int] = []
        for arg in fact.args:
            if isinstance(arg, Constant):
                skeleton.append("c:" + str(arg))
            else:
                skeleton.append("v%d" % len(nulls))
                nulls.append(index[arg])
        if not nulls:
            continue
        entry = (tuple(skeleton), tuple(nulls))
        for i in set(nulls):
            templates[i].append(entry)

    # Seed colors with the BFS distance to the constants (through
    # shared facts).  Distance is invariant under any isomorphism
    # fixing the constants, and for the tree/path-shaped states the
    # chase builds it discriminates most elements immediately — pure
    # refinement from a uniform coloring would need one round per hop
    # of diameter to propagate the same information.
    neighbours: List[Set[int]] = [set() for _ in range(total)]
    anchored: Set[int] = set()
    for fact in structure.facts():
        members = [index[arg] for arg in fact.args if not isinstance(arg, Constant)]
        if not members:
            continue
        if len(members) < len(fact.args):
            anchored.update(members)
        for i in members:
            neighbours[i].update(members)
    distance = [total + 1] * total  # sentinel: unreachable from constants
    frontier = sorted(anchored)
    depth = 0
    while frontier:
        next_frontier: Set[int] = set()
        for i in frontier:
            if distance[i] <= depth:
                continue
            distance[i] = depth
            next_frontier.update(neighbours[i])
        frontier = [i for i in next_frontier if distance[i] > depth + 1]
        depth += 1

    # Colors are integers (ranks of sorted distinct views).  Because a
    # view embeds the element's current color, colors only ever refine:
    # once two elements get different colors they keep different colors,
    # so the *final* color alone identifies an element's class.
    rank = {d: r for r, d in enumerate(sorted(set(distance)))}
    color = [rank[d] for d in distance]
    classes = len(rank)

    while classes < total:
        views = [
            (color[i], tuple(sorted(
                (skeleton, tuple(color[j] for j in nulls))
                for skeleton, nulls in templates[i]
            )))
            for i in range(total)
        ]
        palette = {v: rank for rank, v in enumerate(sorted(set(views)))}
        color = [palette[view] for view in views]
        if len(palette) == classes:
            break
        classes = len(palette)

    grouped: Dict[int, List[Element]] = {}
    for i, element in enumerate(nonconstants):
        grouped.setdefault(color[i], []).append(element)
    return [grouped[key] for key in sorted(grouped)]


def canonical_key(structure: Structure, max_orders: int = 40_320) -> str:
    """A dedup key invariant under renaming the non-constant elements.

    Two structures with equal keys are isomorphic over the constants
    (a key spells out the full fact set up to element indexing), and —
    when the permutation search below is exact — isomorphic structures
    get equal keys.  This is what the finite-model search hashes its
    states by: rules and queries never mention nulls, so states that
    differ only in invented null names have identical futures.

    Unlike :func:`canonical_label` this has no hard size limit: color
    refinement first splits the non-constant elements into
    exchangeability classes, and only permutations within classes are
    searched.  If that search space still exceeds *max_orders*, the key
    falls back to the raw element names — still sound for dedup (equal
    keys still imply isomorphism), merely no longer renaming-invariant
    for that state.
    """
    nonconstants = sorted(structure.nonconstant_elements(), key=str)
    suffix = "|n=%d|con=%s" % (
        len(nonconstants),
        ",".join(sorted(str(c) for c in structure.constant_elements())),
    )

    def render(order: Sequence[Element]) -> str:
        table = {element: f"#{i}" for i, element in enumerate(order)}
        lines = []
        for fact in structure.facts():
            args = ",".join(
                f"c:{arg}" if isinstance(arg, Constant) else table[arg]
                for arg in fact.args
            )
            lines.append(f"{fact.pred}({args})")
        lines.sort()
        return ";".join(lines) + suffix

    if not nonconstants:
        return render(())

    classes = _refine_classes(structure, nonconstants)
    total = 1
    for group in classes:
        for size in range(2, len(group) + 1):
            total *= size
        if total > max_orders:
            return render(nonconstants)

    if total == 1:
        return render([element for group in classes for element in group])
    orderings = product(*(permutations(group) for group in classes))
    return min(
        render([element for group in ordering for element in group])
        for ordering in orderings
    )


def isomorphic_over_constants(left: Structure, right: Structure) -> bool:
    """Isomorphism fixing every constant, via canonical labels.

    The two structures must have the same constant elements (otherwise
    they are trivially non-isomorphic over constants).
    """
    if left.constant_elements() != right.constant_elements():
        return False
    if left.domain_size != right.domain_size or len(left.facts()) != len(right.facts()):
        return False
    return canonical_label(left) == canonical_label(right)
