"""Terms: variables, constants, and labelled nulls.

The term language of the paper is minimal: rule and query atoms contain
*variables* and *constants*; the chase invents fresh elements, written
``c_{t,x̄}`` in the paper, which we represent as :class:`Null` objects
carrying their provenance (which rule fired, on which trigger, at which
chase level).

Design notes
------------
* All three classes are immutable and hashable so they can live in sets,
  dict keys, and frozen atoms.
* :class:`Constant` doubles as a *domain element*: the interpretation of
  a constant in every structure is itself (Herbrand-style), matching the
  paper's convention ("we are not always going to make this distinction"
  between a constant and its value, Section 2.2, footnote 2).
* :class:`Null` is also a domain element but never occurs in rules or
  queries — queries about the chase refer to nulls only through
  variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A first-order variable, identified by its name.

    Two variables with the same name are the same variable.  Names are
    arbitrary non-empty strings; the parser produces identifiers.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __hash__(self) -> int:
        # Cached: terms are hashed millions of times (set members, dict
        # keys in bindings and indexes) and the generated dataclass hash
        # rebuilds a field tuple per call.  Consistent with the
        # generated __eq__ (same class, same name).
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash(("Variable", self.name))
            object.__setattr__(self, "_hash", value)
            return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"?{self.name}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A named constant from the signature.

    Constants are interpreted as themselves in every structure.  The
    paper's structure ``C_con`` (Section 1.1, Notations) is exactly the
    set of :class:`Constant` elements of a structure's domain.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("constant name must be non-empty")

    def __hash__(self) -> int:
        # Cached — see Variable.__hash__.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash(("Constant", self.name))
            object.__setattr__(self, "_hash", value)
            return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"'{self.name}'"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Null:
    """A labelled null: an element invented by the chase.

    The paper writes these elements ``c_{t_i, x̄}`` — one per (rule,
    trigger) pair.  We carry the same provenance:

    Attributes
    ----------
    ident:
        A unique integer within the chase run that created the null.
    rule_index:
        Index of the rule whose existential head demanded the witness
        (``-1`` when unknown, e.g. for hand-built structures).
    level:
        The chase level (``i`` such that the null first appears in
        ``Chase^i``); ``-1`` when unknown.
    """

    ident: int
    rule_index: int = field(default=-1, compare=False)
    level: int = field(default=-1, compare=False)

    def __hash__(self) -> int:
        # Cached — see Variable.__hash__.  Only ``ident`` participates,
        # matching the generated __eq__ (provenance fields are
        # compare=False).
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash(("Null", self.ident))
            object.__setattr__(self, "_hash", value)
            return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_:{self.ident}"

    def __str__(self) -> str:
        return f"_:{self.ident}"


#: A term as it appears in rules and queries.
Term = Union[Variable, Constant]

#: A domain element of a structure.
Element = Union[Constant, Null]

#: A tuple of terms (atom arguments in rules/queries).
Terms = Tuple[Term, ...]


def is_variable(term: object) -> bool:
    """Return ``True`` iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: object) -> bool:
    """Return ``True`` iff *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_null(term: object) -> bool:
    """Return ``True`` iff *term* is a :class:`Null`."""
    return isinstance(term, Null)


def is_ground(term: object) -> bool:
    """Return ``True`` iff *term* can be a domain element (not a variable)."""
    return isinstance(term, (Constant, Null))


class NullFactory:
    """Produces fresh :class:`Null` elements with increasing identifiers.

    A chase run owns one factory, so its nulls are unique within the run.
    The factory can be seeded above any existing identifier to keep
    freshness when chasing a structure that already contains nulls.
    """

    def __init__(self, start: int = 0):
        self._next = start

    @classmethod
    def above(cls, elements: "object") -> "NullFactory":
        """Create a factory whose identifiers exceed every :class:`Null`
        identifier occurring in *elements* (an iterable of elements)."""
        highest = -1
        for element in elements:
            if isinstance(element, Null) and element.ident > highest:
                highest = element.ident
        return cls(highest + 1)

    def fresh(self, rule_index: int = -1, level: int = -1) -> Null:
        """Return a brand-new null, recording its provenance."""
        null = Null(self._next, rule_index, level)
        self._next += 1
        return null

    @property
    def issued(self) -> int:
        """Number of nulls issued so far."""
        return self._next
