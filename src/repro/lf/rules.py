"""Rules and theories: existential TGDs and plain datalog rules.

Per Section 1.1 of the paper, a *TGD* is a formula
``∀x̄ (Φ(x̄) ⇒ ∃y Q(y, ȳ))`` with Φ a conjunctive query and ``ȳ ⊆ x̄``;
a *plain datalog rule* has no existential variable.  A *theory* is a
finite set of such rules.  We additionally support multi-head rules
(needed for Section 5.3), but the main development assumes single
heads, and :meth:`Rule.head_atom` enforces it where required.

The (♠5) normal form of Section 3.1 — every existential head of the
shape ``∃z R(y, z)`` with the witness in the second position, and TGP
predicates never appearing in datalog heads — is *checked* here
(:meth:`Theory.spade5_violations`) and *established* by
:mod:`repro.core.normalize`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import RuleError
from .atoms import Atom, atoms_constants, atoms_variables
from .queries import ConjunctiveQuery
from .signature import Signature
from .terms import Constant, Term, Variable


class Rule:
    """A single rule: body ⇒ head, with implicit quantification.

    Variables in the head that do not occur in the body are read as
    existentially quantified (the paper's ``∃y``); all others are
    universally quantified.

    Parameters
    ----------
    body:
        The body atoms (must be non-empty; equality atoms allowed).
    head:
        The head atoms (must be non-empty; usually a single atom).
    label:
        Optional human-readable name, used in provenance and display.
    """

    __slots__ = ("_body", "_head", "label", "_hash")

    def __init__(self, body: Iterable[Atom], head: Iterable[Atom], label: str = ""):
        self._body: Tuple[Atom, ...] = tuple(body)
        self._head: Tuple[Atom, ...] = tuple(head)
        self.label = label
        if not self._body:
            raise RuleError("rule body must be non-empty")
        if not self._head:
            raise RuleError("rule head must be non-empty")
        for item in self._head:
            if item.is_equality:
                raise RuleError("equality atoms are not allowed in rule heads")
        self._hash = hash((frozenset(self._body), frozenset(self._head)))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def body(self) -> Tuple[Atom, ...]:
        """The body atoms."""
        return self._body

    @property
    def head(self) -> Tuple[Atom, ...]:
        """The head atoms (singleton for single-head rules)."""
        return self._head

    @property
    def is_single_head(self) -> bool:
        """Whether the head consists of one atom."""
        return len(self._head) == 1

    @property
    def head_atom(self) -> Atom:
        """The unique head atom.

        Raises
        ------
        RuleError
            If the rule is multi-head.
        """
        if not self.is_single_head:
            raise RuleError(f"rule has {len(self._head)} head atoms: {self}")
        return self._head[0]

    def body_variables(self) -> FrozenSet[Variable]:
        """Variables occurring in the body."""
        return atoms_variables(self._body)

    def head_variables(self) -> FrozenSet[Variable]:
        """Variables occurring in the head."""
        return atoms_variables(self._head)

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the rule."""
        return self.body_variables() | self.head_variables()

    def existential_variables(self) -> FrozenSet[Variable]:
        """Head variables absent from the body (the ``∃y`` of the TGD)."""
        return self.head_variables() - self.body_variables()

    def frontier(self) -> FrozenSet[Variable]:
        """Body variables that also occur in the head (the ``ȳ``)."""
        return self.head_variables() & self.body_variables()

    @property
    def is_datalog(self) -> bool:
        """Plain datalog rule: no existential variable."""
        return not self.existential_variables()

    @property
    def is_existential(self) -> bool:
        """Existential TGD: at least one existential variable."""
        return bool(self.existential_variables())

    def constants(self) -> FrozenSet[Constant]:
        """All constants of the rule."""
        return atoms_constants(self._body) | atoms_constants(self._head)

    def predicates(self) -> FrozenSet[str]:
        """All predicates (equality excluded)."""
        return frozenset(
            a.pred for a in self._body + self._head if not a.is_equality
        )

    def body_query(self, free: Sequence[Variable] = ()) -> ConjunctiveQuery:
        """The body as a conjunctive query with the given free variables.

        By default the frontier variables are free — this is the query
        whose rewriting defines the constant κ in Section 3.3.
        """
        chosen = tuple(free) if free else tuple(sorted(self.frontier()))
        return ConjunctiveQuery(self._body, chosen)

    @property
    def body_width(self) -> int:
        """Number of distinct variables in the body."""
        return len(self.body_variables())

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def substitute(self, mapping: Dict[Variable, Term]) -> "Rule":
        """Apply a substitution to both body and head."""
        return Rule(
            (a.substitute(mapping) for a in self._body),
            (a.substitute(mapping) for a in self._head),
            self.label,
        )

    def rename_apart(self, taken: Iterable[Variable], stem: str = "u") -> "Rule":
        """Rename the rule's variables to avoid *taken*."""
        forbidden = {v.name for v in taken}
        mapping: Dict[Variable, Variable] = {}
        counter = 0
        for var in sorted(self.variables()):
            if var.name in forbidden:
                while f"{stem}{counter}" in forbidden:
                    counter += 1
                fresh = Variable(f"{stem}{counter}")
                counter += 1
                forbidden.add(fresh.name)
                mapping[var] = fresh
        return self.substitute(dict(mapping)) if mapping else self

    def split_heads(self) -> "List[Rule]":
        """Split a multi-head *datalog* rule into single-head rules.

        For existential multi-head rules this naive split is *not*
        equivalent (the shared witness is lost) — use
        :mod:`repro.transforms.multihead` instead; calling this on such
        a rule raises.
        """
        if self.is_single_head:
            return [self]
        if self.is_existential:
            raise RuleError(
                "splitting an existential multi-head rule loses the shared "
                "witness; use repro.transforms.multihead"
            )
        return [Rule(self._body, (h,), self.label) for h in self._head]

    # ------------------------------------------------------------------
    # Identity and presentation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return (
            frozenset(self._body) == frozenset(other._body)
            and frozenset(self._head) == frozenset(other._head)
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self._body)
        existentials = sorted(self.existential_variables())
        prefix = ""
        if existentials:
            names = ", ".join(str(v) for v in existentials)
            prefix = f"exists {names}. "
        head = ", ".join(str(a) for a in self._head)
        return f"{body} -> {prefix}{head}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rule[{self}]"


class Theory:
    """A finite set of rules (order preserved for provenance).

    The signature is the union of the rules' predicates and constants,
    optionally enlarged via the *signature* parameter (e.g. to declare
    database predicates that no rule mentions).
    """

    __slots__ = ("_rules", "_signature")

    def __init__(self, rules: Iterable[Rule], signature: Optional[Signature] = None):
        self._rules: Tuple[Rule, ...] = tuple(rules)
        inferred = Signature.make()
        for rule in self._rules:
            inferred = inferred.union(
                Signature.of_atoms(rule.body + rule.head)
            )
        if signature is not None:
            inferred = inferred.union(signature)
        self._signature = inferred

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def rules(self) -> Tuple[Rule, ...]:
        """All rules, in declaration order."""
        return self._rules

    @property
    def signature(self) -> Signature:
        """The ambient signature."""
        return self._signature

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> Rule:
        return self._rules[index]

    def tgds(self) -> Tuple[Rule, ...]:
        """The existential TGDs."""
        return tuple(r for r in self._rules if r.is_existential)

    def datalog_rules(self) -> Tuple[Rule, ...]:
        """The plain datalog rules."""
        return tuple(r for r in self._rules if r.is_datalog)

    def predicates(self) -> FrozenSet[str]:
        """All predicates of the theory."""
        found = set()
        for rule in self._rules:
            found.update(rule.predicates())
        return frozenset(found)

    def constants(self) -> FrozenSet[Constant]:
        """All constants of the theory."""
        found = set()
        for rule in self._rules:
            found.update(rule.constants())
        return frozenset(found)

    @property
    def is_binary(self) -> bool:
        """Whether the signature is binary (arity ≤ 2)."""
        return self._signature.is_binary

    @property
    def is_single_head(self) -> bool:
        """Whether every rule has a single head atom."""
        return all(r.is_single_head for r in self._rules)

    def tgp_predicates(self) -> FrozenSet[str]:
        """Tuple generating predicates: heads of existential TGDs (♠5)."""
        return frozenset(
            atom.pred for rule in self.tgds() for atom in rule.head
        )

    def max_body_width(self) -> int:
        """Largest number of body variables across rules."""
        return max((r.body_width for r in self._rules), default=0)

    def spade5_violations(self) -> List[str]:
        """Check the (♠5) normal form of Section 3.1.

        Returns a list of human-readable violations (empty = compliant):

        * every existential TGD head has the shape ``∃z R(y, z)`` —
          binary, witness second, frontier variable first;
        * TGP predicates do not occur in datalog-rule heads;
        * TGP predicates do not occur in *any* non-creating head.
        """
        problems: List[str] = []
        tgps = self.tgp_predicates()
        for rule in self._rules:
            if rule.is_existential:
                if not rule.is_single_head:
                    problems.append(f"multi-head TGD: {rule}")
                    continue
                head = rule.head_atom
                if head.arity != 2:
                    problems.append(f"TGD head not binary: {rule}")
                    continue
                first, second = head.args
                existentials = rule.existential_variables()
                if not (isinstance(second, Variable) and second in existentials):
                    problems.append(f"witness not in second head position: {rule}")
                if not (isinstance(first, Variable) and first in rule.frontier()):
                    problems.append(f"first head argument not a frontier variable: {rule}")
                if len(existentials) != 1:
                    problems.append(f"TGD with {len(existentials)} existential variables: {rule}")
            else:
                for head in rule.head:
                    if head.pred in tgps:
                        problems.append(
                            f"TGP {head.pred} in datalog head: {rule}"
                        )
        return problems

    @property
    def satisfies_spade5(self) -> bool:
        """Whether the theory is already in (♠5) normal form."""
        return not self.spade5_violations()

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def with_rules(self, extra: Iterable[Rule]) -> "Theory":
        """A theory extended with more rules (duplicates dropped)."""
        seen = set(self._rules)
        added = [r for r in extra if r not in seen]
        return Theory(self._rules + tuple(added), self._signature)

    def without_predicates(self, names: Iterable[str]) -> "Theory":
        """Drop every rule mentioning any of the given predicates."""
        dropped = set(names)
        kept = [r for r in self._rules if not (r.predicates() & dropped)]
        return Theory(kept, self._signature.without_relations(dropped))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Theory):
            return NotImplemented
        return frozenset(self._rules) == frozenset(other._rules)

    def __hash__(self) -> int:
        return hash(frozenset(self._rules))

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Theory({len(self._rules)} rules)"


def rule(body: Iterable[Atom], head: "Iterable[Atom] | Atom", label: str = "") -> Rule:
    """Convenience constructor accepting a single head atom directly."""
    if isinstance(head, Atom):
        head = (head,)
    return Rule(body, head, label)
