"""Serialisation and export: JSON-able dicts, parseable text, DOT graphs.

Round-trip guarantees (all property-tested):

* ``structure_from_dict(structure_to_dict(s))`` has the same facts and
  domain;
* ``parse_rule(rule_to_text(r))`` equals ``r`` (constants are quoted, so
  the parser cannot mistake them for variables);
* ``parse_theory(theory_to_text(t))`` equals ``t``.

``to_dot`` renders a binary structure as a GraphViz digraph — handy for
eyeballing skeletons, quotients, and counter-models.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ParseError
from .atoms import Atom
from .queries import ConjunctiveQuery
from .rules import Rule, Theory
from .structures import Structure
from .terms import Constant, Element, Null, Variable


# ----------------------------------------------------------------------
# Elements and atoms as JSON-able values
# ----------------------------------------------------------------------

def element_to_value(element: Element) -> "str | Dict[str, Any]":
    """A JSON-able encoding of a domain element."""
    if isinstance(element, Constant):
        return str(element.name)
    if isinstance(element, Null):
        return {"null": element.ident, "rule": element.rule_index, "level": element.level}
    raise TypeError(f"not a domain element: {element!r}")


def element_from_value(value: "str | Dict[str, Any]") -> Element:
    """Invert :func:`element_to_value`."""
    if isinstance(value, str):
        return Constant(value)
    if isinstance(value, dict) and "null" in value:
        return Null(
            int(value["null"]),
            rule_index=int(value.get("rule", -1)),
            level=int(value.get("level", -1)),
        )
    raise ParseError(f"not an element encoding: {value!r}")


def structure_to_dict(structure: Structure) -> Dict[str, Any]:
    """A JSON-able snapshot of a structure (facts + isolated elements)."""
    facts = [
        {"pred": fact.pred, "args": [element_to_value(a) for a in fact.args]}
        for fact in structure.sorted_facts()
    ]
    used = {arg for fact in structure.facts() for arg in fact.args}
    isolated = [
        element_to_value(e)
        for e in sorted(structure.domain() - used, key=str)
    ]
    return {"facts": facts, "isolated": isolated}


def structure_from_dict(data: Dict[str, Any]) -> Structure:
    """Invert :func:`structure_to_dict`."""
    structure = Structure()
    for entry in data.get("facts", ()):
        args = tuple(element_from_value(v) for v in entry["args"])
        structure.add_fact(Atom(entry["pred"], args))
    for value in data.get("isolated", ()):
        structure.add_element(element_from_value(value))
    return structure


# ----------------------------------------------------------------------
# Rules and theories as parseable text
# ----------------------------------------------------------------------

def _term_to_text(term) -> str:
    if isinstance(term, Constant):
        return f"'{term.name}'"
    return str(term)


def atom_to_text(atom: Atom) -> str:
    """Render an atom with constants quoted (parser-safe)."""
    if atom.is_equality:
        left, right = atom.args
        return f"{_term_to_text(left)} = {_term_to_text(right)}"
    args = ", ".join(_term_to_text(a) for a in atom.args)
    return f"{atom.pred}({args})"


def rule_to_text(rule: Rule) -> str:
    """Render a rule so that :func:`repro.lf.parse_rule` reads it back."""
    body = ", ".join(atom_to_text(a) for a in rule.body)
    head = ", ".join(atom_to_text(a) for a in rule.head)
    existentials = sorted(rule.existential_variables())
    if existentials:
        names = ", ".join(str(v) for v in existentials)
        return f"{body} -> exists {names}. {head}"
    return f"{body} -> {head}"


def theory_to_text(theory: Theory) -> str:
    """One rule per line; parseable by :func:`repro.lf.parse_theory`."""
    return "\n".join(rule_to_text(rule) for rule in theory.rules)


def query_to_text(query: ConjunctiveQuery) -> str:
    """Render a CQ's atoms (free variables are reported separately)."""
    return ", ".join(atom_to_text(a) for a in query.atoms)


# ----------------------------------------------------------------------
# DOT export
# ----------------------------------------------------------------------

def to_dot(
    structure: Structure,
    name: str = "structure",
    highlight: "Optional[Dict[Element, str]]" = None,
) -> str:
    """A GraphViz digraph of a (mostly) binary structure.

    Binary facts become labelled edges; unary facts accumulate into the
    node labels; higher-arity facts are rendered as comment lines (DOT
    has no native hyperedges).  *highlight* maps elements to fill
    colors.
    """
    highlight = highlight or {}
    identifiers: Dict[Element, str] = {}
    for index, element in enumerate(sorted(structure.domain(), key=str)):
        identifiers[element] = f"n{index}"

    unary: Dict[Element, List[str]] = {}
    for fact in structure.facts():
        if fact.arity == 1:
            unary.setdefault(fact.args[0], []).append(fact.pred)

    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for element, identifier in identifiers.items():
        label = str(element)
        tags = sorted(unary.get(element, ()))
        if tags:
            label += "\\n" + ",".join(tags)
        shape = "box" if isinstance(element, Constant) else "ellipse"
        style = ""
        color = highlight.get(element)
        if color:
            style = f', style=filled, fillcolor="{color}"'
        lines.append(f'  {identifier} [label="{label}", shape={shape}{style}];')
    for fact in structure.sorted_facts():
        if fact.arity == 2:
            source, target = (identifiers[a] for a in fact.args)
            lines.append(f'  {source} -> {target} [label="{fact.pred}"];')
        elif fact.arity > 2:
            lines.append(f"  // {fact}")
    lines.append("}")
    return "\n".join(lines)
