"""Compiled join plans: the planned query-evaluation path.

The legacy matcher in :mod:`repro.lf.homomorphism` re-derives a join
order atom-by-atom on every call — each search node re-scores every
pending atom with ``min()`` and each variable extension copies the whole
binding dict.  Every engine in the lab (chase trigger evaluation, the
PerfectRef-style rewriter's subsumption checks, ptype computation, the
FC model search) bottoms out there, so those costs multiply.

This module compiles each conjunction of atoms *once* into an explicit
:class:`QueryPlan`:

* a **static atom ordering** chosen greedily — most-constrained atom
  first, ties broken by predicate cardinality when a structure's index
  statistics are available at compile time (plans stay valid on any
  structure; the statistics only steer the order);
* **per-step specs**: for each atom, which argument positions hold
  constants (checked early), which hold variables bound by earlier
  steps (checked against the running binding), and which bind a
  variable for the first time;
* **per-atom index selection**: the candidate positions usable for an
  index lookup are precompiled; at run time the smallest bucket among
  them is chosen (an empty bucket cuts the branch immediately).

Plans are cached in a process-wide :class:`PlanCache` keyed on the
atom tuple plus the set of pre-bound variables — the atoms of a
:class:`~repro.lf.queries.ConjunctiveQuery` are deterministically
ordered, so for query evaluation this key coincides with the query's
canonical shape and repeated evaluation (chase rounds, ``minimize_ucq``
containment pairs, ptype probes) compiles nothing after the first call.

Evaluation is **iterative**: an explicit stack of candidate iterators
with a per-depth undo trail mutates a single binding dict, copying it
only when a complete match is yielded.  The result is binding-for-
binding equal (as a set) to the legacy backtracking matcher — the
property suite enforces this.

Instrumentation lives in :class:`HomStats`; a process-global instance
(:data:`HOM_STATS`) accumulates counters that the chase engine
snapshots per run and folds into
:class:`~repro.chase.stats.ChaseStats`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .atoms import Atom
from .structures import Structure
from .terms import Element, Variable

Binding = Dict[Variable, Element]


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------

@dataclass
class HomStats:
    """Counters of the planned homomorphism engine.

    ``plans_compiled`` / ``plan_cache_hits`` / ``plan_cache_misses``
    describe the plan cache and therefore depend on *cache warmth*
    (what ran earlier in the process), not only on the inputs — they
    are treated like wall times by the determinism machinery (see
    :data:`repro.chase.stats.TIMING_FIELDS`).  The remaining counters
    are pure functions of (queries, structures, bindings):

    * ``plan_requests`` — plan lookups (hits + misses);
    * ``index_probes`` — hash-index lookups issued by the matcher;
    * ``candidates_scanned`` — candidate facts pulled from index
      buckets;
    * ``backtracks`` — search-node exhaustions (the matcher popped a
      level).
    """

    plans_compiled: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    index_probes: int = 0
    candidates_scanned: int = 0
    backtracks: int = 0

    @property
    def plan_requests(self) -> int:
        """Plan-cache lookups: deterministic, unlike the hit/miss split."""
        return self.plan_cache_hits + self.plan_cache_misses

    def snapshot(self) -> "HomStats":
        """An independent copy (use with :meth:`since` to scope a run)."""
        return replace(self)

    def since(self, earlier: "HomStats") -> "HomStats":
        """Field-wise difference ``self - earlier`` (per-run deltas)."""
        return HomStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self, cache: bool = True) -> Dict[str, int]:
        """JSON-ready counters; ``cache=False`` drops the warmth-dependent
        plan-cache split (keeping the deterministic ``plan_requests``)."""
        payload: Dict[str, int] = {
            "plan_requests": self.plan_requests,
            "index_probes": self.index_probes,
            "candidates_scanned": self.candidates_scanned,
            "backtracks": self.backtracks,
        }
        if cache:
            payload["plans_compiled"] = self.plans_compiled
            payload["plan_cache_hits"] = self.plan_cache_hits
            payload["plan_cache_misses"] = self.plan_cache_misses
        return payload

    def __str__(self) -> str:
        return (
            f"HomStats(plans={self.plan_requests}, "
            f"probes={self.index_probes}, "
            f"scanned={self.candidates_scanned}, "
            f"backtracks={self.backtracks})"
        )


#: Process-global counters; the chase engine snapshots these per run.
HOM_STATS = HomStats()


# ----------------------------------------------------------------------
# Plan representation
# ----------------------------------------------------------------------

#: A step's per-candidate tests and effects, split so that failing
#: candidates never touch the binding: ``(consts, checks, sames,
#: binds)`` — ``consts`` are ``(position, element)`` equality tests,
#: ``checks`` are ``(position, variable)`` tests against the running
#: binding, ``sames`` are ``(first_position, later_position)``
#: intra-atom repeat tests, and ``binds`` are ``(position, variable)``
#: first-occurrence assignments applied only once everything passed.
CheckSet = Tuple[
    Tuple[Tuple[int, Element], ...],
    Tuple[Tuple[int, Variable], ...],
    Tuple[Tuple[int, int], ...],
    Tuple[Tuple[int, Variable], ...],
]


@dataclass(frozen=True)
class PlanStep:
    """One atom of a plan, with everything the matcher needs precompiled.

    Attributes
    ----------
    atom:
        The source atom (diagnostics only).
    pred / arity:
        Predicate and expected fact arity.
    lookups:
        ``(position, constant, variable)`` triples usable for an index
        lookup — exactly one of *constant* / *variable* is set, and a
        variable here is statically guaranteed bound before this step.
    variants:
        Parallel to *lookups*: the :data:`CheckSet` to run when that
        lookup's bucket was chosen.  Every fact in the
        ``(pred, position, element)`` bucket satisfies that position's
        test by construction, so the corresponding check is dropped —
        element equality is a Python-level call, and this skips it once
        per candidate.
    full:
        The unfiltered :data:`CheckSet`, for the predicate-wide
        fallback bucket.
    """

    atom: Atom
    pred: str
    arity: int
    lookups: Tuple[Tuple[int, Optional[Element], Optional[Variable]], ...]
    variants: Tuple[CheckSet, ...]
    full: CheckSet


def _compile_step(atom: Atom, bound: Set[Variable]) -> PlanStep:
    """Compile one atom given the variables bound by earlier steps."""
    lookups: List[Tuple[int, Optional[Element], Optional[Variable]]] = []
    consts: List[Tuple[int, Element]] = []
    checks: List[Tuple[int, Variable]] = []
    sames: List[Tuple[int, int]] = []
    binds: List[Tuple[int, Variable]] = []
    first_at: Dict[Variable, int] = {}
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Variable):
            if arg in bound:
                lookups.append((position, None, arg))
                checks.append((position, arg))
            elif arg in first_at:
                # repeated within this atom: compare the two positions
                # directly, no binding needed to test it
                sames.append((first_at[arg], position))
            else:
                first_at[arg] = position
                binds.append((position, arg))
        else:
            lookups.append((position, arg, None))
            consts.append((position, arg))
    full: CheckSet = (tuple(consts), tuple(checks), tuple(sames), tuple(binds))
    variants: List[CheckSet] = []
    for position, constant, variable in lookups:
        if variable is None:
            variants.append((
                tuple(pair for pair in consts if pair[0] != position),
                full[1], full[2], full[3],
            ))
        else:
            variants.append((
                full[0],
                tuple(pair for pair in checks if pair[0] != position),
                full[2], full[3],
            ))
    return PlanStep(
        atom=atom,
        pred=atom.pred,
        arity=atom.arity,
        lookups=tuple(lookups),
        variants=tuple(variants),
        full=full,
    )


def _static_score(
    atom: Atom, bound: Set[Variable], structure: "Optional[Structure]"
) -> tuple:
    """Ordering key: most-constrained first, then index statistics.

    Mirrors the legacy matcher's ``(unbound, -bound)`` heuristic —
    computed over argument occurrences — and breaks ties with the
    predicate's fact count when a structure was supplied at compile
    time, then deterministically by the atom itself.
    """
    unbound = 0
    bound_args = 0
    for arg in atom.args:
        if isinstance(arg, Variable) and arg not in bound:
            unbound += 1
        else:
            bound_args += 1
    cardinality = structure.pred_size(atom.pred) if structure is not None else 0
    return (unbound, -bound_args, cardinality, atom.pred, tuple(map(str, atom.args)))


@dataclass(frozen=True)
class QueryPlan:
    """A compiled join plan for a conjunction of relational atoms.

    Valid on *any* structure: compile-time index statistics influence
    only the atom ordering, never correctness.  Equality atoms must be
    resolved away before compilation
    (:func:`repro.lf.homomorphism._resolve_equalities` does this for
    every public entry point).
    """

    steps: Tuple[PlanStep, ...]
    prebound: FrozenSet[Variable]

    def bindings(
        self, structure: Structure, binding: "Optional[Binding]" = None
    ) -> Iterator[Binding]:
        """Generate every satisfying binding (the planned matcher).

        Iterative backtracking over the precompiled step order: a
        single binding dict is mutated through an undo trail per depth
        and copied only when a full match is emitted.  Candidate
        selection and spec application are inlined — this loop runs
        once per candidate fact of every engine in the lab, so each
        avoided function call is paid back millions of times.  Callers
        must not mutate *structure* while consuming the generator (live
        index views, same contract as the legacy matcher).

        Columnar structures (``structure.is_columnar``) take the
        int-space probe loop instead: same plan, same bindings, but
        candidates are row ids compared as machine ints against the
        interned columns.
        """
        if structure.is_columnar:
            return self._bindings_columnar(structure, binding)
        return self._bindings_dict(structure, binding)

    def _bindings_dict(
        self, structure: Structure, binding: "Optional[Binding]" = None
    ) -> Iterator[Binding]:
        """The dict-backend matcher: probes the Element-keyed buckets."""
        current: Binding = dict(binding) if binding else {}
        steps = self.steps
        total = len(steps)
        if total == 0:
            yield dict(current)
            return
        probes = scanned = backtracks = 0
        facts_with_view = structure.facts_with_view
        facts_with_pred = structure.facts_with_pred_view
        iterators: List[Optional[Iterator[Atom]]] = [None] * total
        checksets: List[Optional[CheckSet]] = [None] * total
        trails: List[List[Variable]] = [[] for _ in range(total)]
        depth = 0
        fresh = True  # the current depth needs a new candidate iterator
        try:
            while depth >= 0:
                step = steps[depth]
                trail = trails[depth]
                if fresh:
                    # pick the smallest usable index bucket for the step
                    best = None
                    best_size = 0
                    best_idx = -1
                    empty = False
                    for idx, (position, constant, variable) in enumerate(step.lookups):
                        value = constant if variable is None else current[variable]
                        probes += 1
                        bucket = facts_with_view(step.pred, position, value)
                        size = len(bucket)
                        if best is None or size < best_size:
                            if not size:
                                empty = True
                                break
                            best = bucket
                            best_size = size
                            best_idx = idx
                    if empty:
                        backtracks += 1
                        depth -= 1
                        fresh = False
                        continue
                    if best is None:
                        probes += 1
                        best = facts_with_pred(step.pred)
                        checksets[depth] = step.full
                    else:
                        checksets[depth] = step.variants[best_idx]
                    iterators[depth] = iter(best)
                while trail:
                    del current[trail.pop()]
                matched = False
                arity = step.arity
                consts, checks, sames, binds = checksets[depth]  # type: ignore[misc]
                # checks never bind, binds never fail: failing
                # candidates leave the binding and trail untouched
                for fact in iterators[depth]:  # type: ignore[union-attr]
                    scanned += 1
                    fact_args = fact.args
                    if len(fact_args) != arity:
                        continue
                    for position, element in consts:
                        if fact_args[position] != element:
                            break
                    else:
                        for position, variable in checks:
                            if current[variable] != fact_args[position]:
                                break
                        else:
                            for earlier, later in sames:
                                if fact_args[earlier] != fact_args[later]:
                                    break
                            else:
                                for position, variable in binds:
                                    current[variable] = fact_args[position]
                                    trail.append(variable)
                                matched = True
                                break
                if not matched:
                    backtracks += 1
                    depth -= 1
                    fresh = False
                    continue
                if depth + 1 == total:
                    yield dict(current)
                    fresh = False
                else:
                    depth += 1
                    fresh = True
        finally:
            # flush local counters even when the consumer abandons the
            # generator early (find_homomorphism, satisfies, limits)
            stats = HOM_STATS
            stats.index_probes += probes
            stats.candidates_scanned += scanned
            stats.backtracks += backtracks

    def _bindings_columnar(
        self, structure: Structure, binding: "Optional[Binding]" = None
    ) -> Iterator[Binding]:
        """The columnar matcher: the same plan run in int space.

        The step checksets are translated from elements to interned
        term ids and memoised on the store's shared ``TermTable``
        (plans are backend-agnostic, so the translation cannot be
        precompiled into them; but ids are append-only, so a resolved
        translation never goes stale and an *unresolvable* one only
        needs rechecking after the table has grown).  The backtracking
        loop then iterates the relations' ``(position, id)`` buckets of
        row-key tuples and compares their already-boxed ints — no
        Element hashing, no Atom decoding, and no re-boxing out of the
        ``array('q')`` columns per candidate.  An element-space shadow
        binding is maintained per bind, so each emitted match is one
        C-speed dict copy.  The
        structure's private ``_table`` / ``_rels`` are reached
        duck-typed to keep this module import-free of
        :mod:`repro.store`.
        """
        table = structure._table  # type: ignore[attr-defined]
        rels = structure._rels  # type: ignore[attr-defined]
        orig: Binding = dict(binding) if binding else {}
        steps = self.steps
        total = len(steps)
        if total == 0:
            yield dict(orig)
            return
        ids = table._ids
        id_of = ids.get
        elements = table._elements

        # keyed by id(plan), with the plan itself kept in the entry: a
        # strong ref, so the id cannot be reused while the entry lives
        # (hashing the deeply-nested plan object per call would cost
        # more than the translation it memoises)
        cached = table._plans.get(id(self))
        if cached is not None and (cached[1] is not None or cached[2] == len(ids)):
            translated = cached[1]
        else:
            # variables become dense *slots* in a plain list: checks
            # and lookups then index the list — no Variable hashing in
            # the inner loop.  Stale slots after a backtrack are
            # harmless: the compiler guarantees a check only reads
            # variables bound by earlier steps, and every re-descent
            # rewrites those slots before any deeper check reads them.
            slot_of: Dict[Variable, int] = {}
            for var in self.prebound:
                slot_of.setdefault(var, len(slot_of))
            for step in steps:
                for _, var in step.full[3]:
                    slot_of.setdefault(var, len(slot_of))

            # translate each step's lookups/checksets to id/slot space
            def to_ids(checkset: CheckSet):
                consts, checks, sames, binds = checkset
                id_consts = []
                for position, element in consts:
                    vid = id_of(element)
                    if vid is None:
                        return None  # constant interned nowhere: unmatchable
                    id_consts.append((position, vid))
                return (
                    tuple(id_consts),
                    tuple((position, slot_of[var]) for position, var in checks),
                    sames,
                    tuple((position, slot_of[var], var) for position, var in binds),
                )

            tsteps = []
            for step in steps:
                full = to_ids(step.full)
                if full is None:
                    # some constant has no id anywhere in this store
                    # family — re-translate only once the table grows
                    tsteps = None
                    break
                variants = tuple(to_ids(variant) for variant in step.variants)
                lookups = tuple(
                    (
                        position,
                        None if constant is None else id_of(constant),
                        None if variable is None else slot_of[variable],
                    )
                    for position, constant, variable in step.lookups
                )
                tsteps.append((step.pred, step.arity, lookups, variants, full))
            translated = None
            if tsteps is not None:
                translated = (tuple(tsteps), tuple(slot_of.items()), len(slot_of))
            table._plans[id(self)] = (self, translated, len(ids))
        if translated is None:
            return  # a step can never match: no bindings at all
        tsteps, prebound_slots, nslots = translated

        # prebound variables in slot space; -1 (never a valid id) for
        # elements no fact of this store family mentions.  ``decoded``
        # is the element-space shadow of the slot list, maintained on
        # bind/undo so a full match is emitted as one C-speed dict copy
        # (decoding at yield time costs per match x variable; decoding
        # at bind time is shared by every match under that prefix).
        current: List[int] = [-1] * nslots
        for var, slot in prebound_slots:
            if var in orig:
                vid = id_of(orig[var])
                current[slot] = -1 if vid is None else vid
        decoded: Binding = orig

        probes = scanned = backtracks = 0
        iterators: List[Optional[Iterator[Tuple[int, ...]]]] = [None] * total
        checksets: List[Optional[tuple]] = [None] * total
        trails: List[List[Variable]] = [[] for _ in range(total)]
        depth = 0
        fresh = True
        try:
            while depth >= 0:
                pred, arity, lookups, variants, full = tsteps[depth]
                trail = trails[depth]
                if fresh:
                    rel = rels.get(pred)
                    probes += 1
                    if rel is None or rel.arity != arity:
                        backtracks += 1
                        depth -= 1
                        fresh = False
                        continue
                    index = rel.index
                    best = None
                    best_size = 0
                    best_idx = -1
                    empty = False
                    for idx, (position, const_id, slot) in enumerate(lookups):
                        value = const_id if slot is None else current[slot]
                        probes += 1
                        bucket = index.get((position, value))
                        size = len(bucket) if bucket is not None else 0
                        if best is None or size < best_size:
                            if not size:
                                empty = True
                                break
                            best = bucket
                            best_size = size
                            best_idx = idx
                    if empty:
                        backtracks += 1
                        depth -= 1
                        fresh = False
                        continue
                    if best is None:
                        probes += 1
                        best = rel.rows
                        checksets[depth] = full
                    else:
                        checksets[depth] = variants[best_idx]
                    iterators[depth] = iter(best)
                while trail:
                    del decoded[trail.pop()]
                matched = False
                consts, checks, sames, binds = checksets[depth]  # type: ignore[misc]
                # candidates are row-key tuples: one tuple index per
                # test, ints already boxed (shared with the row dict)
                for key in iterators[depth]:  # type: ignore[union-attr]
                    scanned += 1
                    for position, vid in consts:
                        if key[position] != vid:
                            break
                    else:
                        for position, slot in checks:
                            if current[slot] != key[position]:
                                break
                        else:
                            for earlier, later in sames:
                                if key[earlier] != key[later]:
                                    break
                            else:
                                for position, slot, variable in binds:
                                    vid = key[position]
                                    current[slot] = vid
                                    decoded[variable] = elements[vid]
                                    trail.append(variable)
                                matched = True
                                break
                if not matched:
                    backtracks += 1
                    depth -= 1
                    fresh = False
                    continue
                if depth + 1 == total:
                    yield dict(decoded)
                    fresh = False
                else:
                    depth += 1
                    fresh = True
        finally:
            stats = HOM_STATS
            stats.index_probes += probes
            stats.candidates_scanned += scanned
            stats.backtracks += backtracks
            structure._probe_count += probes  # type: ignore[attr-defined]


def compile_plan(
    atoms: Sequence[Atom],
    prebound: "FrozenSet[Variable] | Set[Variable]" = frozenset(),
    structure: "Optional[Structure]" = None,
) -> QueryPlan:
    """Compile *atoms* (no equalities) into a :class:`QueryPlan`.

    *prebound* are the variables the caller will supply in the initial
    binding — they count as bound for ordering and become checks, not
    binds.  *structure*, when given, contributes predicate cardinalities
    to the ordering heuristic only.
    """
    for item in atoms:
        if item.is_equality:
            raise ValueError(
                f"equality atom {item} must be resolved before planning"
            )
    remaining = list(atoms)
    bound: Set[Variable] = set(prebound)
    steps: List[PlanStep] = []
    while remaining:
        index = min(
            range(len(remaining)),
            key=lambda i: _static_score(remaining[i], bound, structure),
        )
        chosen = remaining.pop(index)
        steps.append(_compile_step(chosen, bound))
        bound.update(chosen.variable_set())
    return QueryPlan(steps=tuple(steps), prebound=frozenset(prebound))


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------

class PlanCache:
    """A bounded map ``(atom tuple, prebound vars) -> QueryPlan``.

    The key is the query's shape as the engines see it: CQ atoms are
    deterministically ordered, so syntactically equal queries share an
    entry regardless of construction order.  The cache is cleared
    wholesale when full (entries are cheap to rebuild and real
    workloads never approach the bound).

    Thread-safe for the server's shared-worker use: the hit path stays
    a lock-free dict probe (plans are immutable once published), while
    the compile-and-insert miss path runs under a lock with a
    double-check, so every thread asking for one shape gets the *same*
    plan object and a concurrent wholesale clear cannot interleave
    with an insert.
    """

    def __init__(self, maxsize: int = 8192):
        self._maxsize = maxsize
        self._plans: Dict[
            Tuple[Tuple[Atom, ...], FrozenSet[Variable]], QueryPlan
        ] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def plan_for(
        self,
        atoms: Tuple[Atom, ...],
        prebound: FrozenSet[Variable],
        structure: "Optional[Structure]" = None,
    ) -> QueryPlan:
        """Fetch or compile the plan for this query shape."""
        key = (atoms, prebound)
        plan = self._plans.get(key)
        if plan is not None:
            HOM_STATS.plan_cache_hits += 1
            return plan
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                HOM_STATS.plan_cache_hits += 1
                return plan
            HOM_STATS.plan_cache_misses += 1
            plan = compile_plan(atoms, prebound, structure)
            HOM_STATS.plans_compiled += 1
            if len(self._plans) >= self._maxsize:
                self._plans.clear()
            self._plans[key] = plan
        return plan


#: The process-wide plan cache used by :mod:`repro.lf.homomorphism`.
PLAN_CACHE = PlanCache()


def plan_for(
    atoms: Sequence[Atom],
    prebound: "FrozenSet[Variable] | Set[Variable]" = frozenset(),
    structure: "Optional[Structure]" = None,
) -> QueryPlan:
    """Module-level convenience over :data:`PLAN_CACHE`."""
    return PLAN_CACHE.plan_for(tuple(atoms), frozenset(prebound), structure)


def clear_plan_cache() -> None:
    """Empty the process-wide plan cache (benchmarks and tests)."""
    PLAN_CACHE.clear()
