"""A text syntax for rules, queries, facts, and theories.

The syntax mirrors how the paper writes its rules::

    E(x,y) -> exists z. E(y,z)
    E(x,y), E(y,z), E(z,x) -> exists t. U(x,t)
    U(x,y) -> exists z. U(y,z)

Grammar (informal)
------------------
* **Rule**: ``body -> head`` where each side is a comma- (or ``&``-)
  separated list of atoms.  ``=>``, ``⇒`` and ``→`` are accepted for
  the arrow.  Head variables absent from the body are existential; an
  optional explicit ``exists z1, z2.`` prefix on the head is checked
  against that set.
* **Atom**: ``R(t1, ..., tk)`` or the equality ``t1 = t2``.
* **Term**: an identifier.  In rules and queries identifiers are
  *variables* unless quoted (``'a'``) or listed in the ``constants``
  argument.  In facts every identifier is a constant.
* **Theory**: one rule per line; blank lines and ``#``/``%``/``//``
  comments ignored.
* **Facts / structures**: one atom per line (trailing ``.`` allowed).

These parsers raise :class:`~repro.errors.ParseError` with the position
of the first offending token.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import ParseError
from .atoms import Atom
from .queries import ConjunctiveQuery
from .rules import Rule, Theory
from .signature import Signature
from .structures import Structure
from .terms import Constant, Term, Variable

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<arrow>->|=>|⇒|→)"
    r"|(?P<quoted>'[^']*')"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_']*)"
    r"|(?P<punct>[(),.&=])"
    r"|(?P<exists>∃)"
    r")"
)

_COMMENT = re.compile(r"(#|%|//).*$")


class _Tokens:
    """A tiny cursor over the token stream of one input string."""

    def __init__(self, text: str):
        self.text = text
        self.items: List[Tuple[str, str, int]] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None or match.end() == position:
                if text[position:].strip():
                    raise ParseError(
                        f"unexpected character {text[position]!r}", text, position
                    )
                break
            position = match.end()
            for kind in ("arrow", "quoted", "name", "punct", "exists"):
                value = match.group(kind)
                if value is not None:
                    self.items.append((kind, value, match.start()))
                    break
        self.index = 0

    def peek(self) -> "Optional[Tuple[str, str, int]]":
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def next(self) -> Tuple[str, str, int]:
        item = self.peek()
        if item is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return item

    def expect(self, kind: str, value: "Optional[str]" = None) -> Tuple[str, str, int]:
        got = self.next()
        if got[0] != kind or (value is not None and got[1] != value):
            wanted = value or kind
            raise ParseError(
                f"expected {wanted!r}, got {got[1]!r}", self.text, got[2]
            )
        return got

    def accept(self, kind: str, value: "Optional[str]" = None) -> bool:
        item = self.peek()
        if item is not None and item[0] == kind and (value is None or item[1] == value):
            self.index += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.items)


def _term(tokens: _Tokens, constants: Set[str], all_constants: bool) -> Term:
    kind, value, position = tokens.next()
    if kind == "quoted":
        return Constant(value[1:-1])
    if kind == "name":
        if all_constants or value in constants:
            return Constant(value)
        return Variable(value)
    raise ParseError(f"expected a term, got {value!r}", tokens.text, position)


def _atom(tokens: _Tokens, constants: Set[str], all_constants: bool) -> Atom:
    kind, value, position = tokens.next()
    upcoming = tokens.peek()
    if kind in ("quoted", "name") and upcoming is not None and upcoming[:2] == ("punct", "="):
        # equality atom: t1 = t2
        tokens.expect("punct", "=")
        left: Term
        if kind == "quoted":
            left = Constant(value[1:-1])
        elif all_constants or value in constants:
            left = Constant(value)
        else:
            left = Variable(value)
        right = _term(tokens, constants, all_constants)
        return Atom("=", (left, right))
    if kind != "name":
        raise ParseError(f"expected an atom, got {value!r}", tokens.text, position)
    tokens.expect("punct", "(")
    args: List[Term] = []
    if not tokens.accept("punct", ")"):
        args.append(_term(tokens, constants, all_constants))
        while tokens.accept("punct", ","):
            args.append(_term(tokens, constants, all_constants))
        tokens.expect("punct", ")")
    return Atom(value, tuple(args))


def _atom_list(tokens: _Tokens, constants: Set[str], all_constants: bool) -> List[Atom]:
    atoms = [_atom(tokens, constants, all_constants)]
    while tokens.accept("punct", ",") or tokens.accept("punct", "&"):
        atoms.append(_atom(tokens, constants, all_constants))
    return atoms


def parse_atom(text: str, constants: Iterable[str] = ()) -> Atom:
    """Parse a single atom, e.g. ``E(x, 'a')``."""
    tokens = _Tokens(text)
    result = _atom(tokens, set(constants), all_constants=False)
    tokens.accept("punct", ".")
    if not tokens.exhausted:
        raise ParseError("trailing input after atom", text, tokens.peek()[2])
    return result


def parse_query(
    text: str,
    constants: Iterable[str] = (),
    free: Sequence[str] = (),
) -> ConjunctiveQuery:
    """Parse a conjunctive query, e.g. ``E(x,y), E(y,z)``.

    Variables named in *free* are the free variables (in that order);
    all others are existential, following the paper's convention of
    omitting quantifiers.
    """
    tokens = _Tokens(text)
    atoms = _atom_list(tokens, set(constants), all_constants=False)
    tokens.accept("punct", ".")
    if not tokens.exhausted:
        raise ParseError("trailing input after query", text, tokens.peek()[2])
    return ConjunctiveQuery(atoms, tuple(Variable(name) for name in free))


def parse_rule(text: str, constants: Iterable[str] = (), label: str = "") -> Rule:
    """Parse a rule, e.g. ``E(x,y) -> exists z. E(y,z)``.

    An explicit ``exists`` prefix on the head is optional; when present
    it must name exactly the head variables that are absent from the
    body (otherwise a :class:`ParseError` is raised, which catches the
    common typo of an unsafe variable).
    """
    tokens = _Tokens(text)
    fixed = set(constants)
    body = _atom_list(tokens, fixed, all_constants=False)
    tokens.expect("arrow")
    declared: "Optional[List[str]]" = None
    if tokens.accept("name", "exists") or tokens.accept("exists"):
        declared = []
        kind, value, position = tokens.next()
        if kind != "name":
            raise ParseError("expected variable after 'exists'", text, position)
        declared.append(value)
        while tokens.accept("punct", ","):
            kind, value, position = tokens.next()
            if kind != "name":
                raise ParseError("expected variable after ','", text, position)
            declared.append(value)
        tokens.expect("punct", ".")
    head = _atom_list(tokens, fixed, all_constants=False)
    tokens.accept("punct", ".")
    if not tokens.exhausted:
        raise ParseError("trailing input after rule", text, tokens.peek()[2])
    parsed = Rule(body, head, label)
    if declared is not None:
        actual = {v.name for v in parsed.existential_variables()}
        if actual != set(declared):
            raise ParseError(
                f"declared existential variables {sorted(declared)} do not "
                f"match the implicit ones {sorted(actual)}",
                text,
            )
    return parsed


def parse_theory(text: str, constants: Iterable[str] = ()) -> Theory:
    """Parse a theory: one rule per line, comments and blanks ignored."""
    rules: List[Rule] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _COMMENT.sub("", raw).strip()
        if not line:
            continue
        try:
            rules.append(parse_rule(line, constants, label=f"line{lineno}"))
        except ParseError as error:
            raise ParseError(f"line {lineno}: {error}", raw) from error
    return Theory(rules)


def parse_fact(text: str) -> Atom:
    """Parse a ground fact; every identifier is a constant."""
    tokens = _Tokens(text)
    result = _atom(tokens, set(), all_constants=True)
    tokens.accept("punct", ".")
    if not tokens.exhausted:
        raise ParseError("trailing input after fact", text, tokens.peek()[2])
    if result.is_equality:
        raise ParseError("equality is not a fact", text)
    return result


def parse_facts(text: str) -> List[Atom]:
    """Parse many facts: one per line, or comma-separated on one line."""
    facts: List[Atom] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _COMMENT.sub("", raw).strip()
        if not line:
            continue
        tokens = _Tokens(line)
        try:
            atoms = _atom_list(tokens, set(), all_constants=True)
            tokens.accept("punct", ".")
            if not tokens.exhausted:
                raise ParseError("trailing input", line, tokens.peek()[2])
        except ParseError as error:
            raise ParseError(f"line {lineno}: {error}", raw) from error
        facts.extend(atoms)
    return facts


def parse_structure(text: str, signature: Optional[Signature] = None) -> Structure:
    """Parse a database instance from its facts."""
    return Structure(parse_facts(text), signature=signature)
