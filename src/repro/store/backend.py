"""Backend selection for the fact-store layer.

Kept free of any ``repro`` imports so that :mod:`repro.config` (the
shared engine-config base) can depend on it without creating a cycle
through the structure/plan layer.

Resolution order for the active backend (:func:`resolve_backend`):

1. an explicit value on the config (``--store`` on the CLI, or the
   ``store`` field of any :class:`~repro.config.BudgetedConfig`);
2. the ``REPRO_STORE`` environment variable (how the CI matrix runs
   the whole tier-1 suite against each backend);
3. ``None`` — inherit whatever backend the input structure already
   uses (the default: engines never convert behind the caller's back).
"""

from __future__ import annotations

import os
from enum import Enum
from typing import Any, Optional

#: Environment variable consulted when no explicit backend was chosen.
STORE_ENV_VAR = "REPRO_STORE"


class StoreBackend(str, Enum):
    """The two fact-store backends.

    Attributes
    ----------
    DICT:
        The original :class:`~repro.lf.structures.Structure`:
        per-predicate and per-(predicate, position, element) hash
        indexes of Python sets of :class:`~repro.lf.atoms.Atom`.
    COLUMNAR:
        :class:`~repro.store.ColumnarStructure`: terms interned to
        dense ints in a per-store :class:`~repro.store.TermTable`,
        relations stored as flat ``array('q')`` columns with
        (position, value) hash-bucket indexes, matched by the
        int-column probe loop in :mod:`repro.lf.plan`.
    """

    DICT = "dict"
    COLUMNAR = "columnar"


def resolve_backend(value: "Any" = None) -> Optional[StoreBackend]:
    """Normalise *value* to a :class:`StoreBackend`, or ``None``.

    ``None`` (no explicit choice) falls back to the ``REPRO_STORE``
    environment variable; if that is unset or empty the result is
    ``None``, meaning "inherit the input structure's backend".
    Unrecognised names raise ``ValueError`` listing the alternatives.
    """
    if value is None:
        value = os.environ.get(STORE_ENV_VAR) or None
        if value is None:
            return None
    if isinstance(value, StoreBackend):
        return value
    if isinstance(value, str):
        try:
            return StoreBackend(value)
        except ValueError:
            allowed = ", ".join(repr(m.value) for m in StoreBackend)
            raise ValueError(
                f"store backend must be one of {allowed}, got {value!r}"
            ) from None
    raise ValueError(
        f"store backend must be a StoreBackend (or its string value), got {value!r}"
    )
