"""Term interning: elements to dense ints and back.

A :class:`TermTable` is the per-store dictionary mapping domain
elements (:class:`~repro.lf.terms.Constant` /
:class:`~repro.lf.terms.Null`) to dense non-negative ints, so the
columnar relations and the compiled matchers can work on machine
integers instead of hashing Python objects per candidate fact.

The table is **append-only**: an element's id never changes and ids
are never reused.  That makes it safe to *share* one table across an
entire ``copy()`` family of structures (every fc-search branch, every
chase round): a child interning a new null appends to the shared
table, which cannot invalidate any id a sibling already stored in its
columns.  Unused entries waste only a dict slot and a list slot.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..lf.terms import Element


class TermTable:
    """A bidirectional, append-only Element <-> dense-int map.

    ``_plans`` is the columnar matcher's per-table translation cache
    (:meth:`repro.lf.plan.QueryPlan._bindings_columnar`): a compiled
    plan's element-space check sets translated to id space are valid
    forever once every constant resolved — ids never change — so they
    are memoised here as ``id(plan) -> (plan, translated steps or
    None, table length at translation)``.  A ``None`` translation
    (some constant had no id, so the plan is unmatchable) is rechecked
    only after the table has grown.  The entry holds the plan itself
    so its ``id`` cannot be recycled while the entry lives.
    """

    __slots__ = ("_ids", "_elements", "_plans", "_lock")

    def __init__(self) -> None:
        self._ids: Dict[Element, int] = {}
        self._elements: List[Element] = []
        self._plans: Dict[int, tuple] = {}
        # Id allocation must be atomic: the table is shared across a
        # whole copy() family, and the server chases copies of one
        # cached columnar database from many worker threads at once.
        # Without the lock two concurrent misses can read the same
        # ``len(self._elements)`` and hand two elements one id.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._elements)

    def intern(self, element: Element) -> int:
        """The element's id, allocating the next dense int if new.

        Thread-safe: the hit path is a lock-free dict probe (dict
        reads are atomic and ids never change once published); only a
        miss takes the allocation lock, re-checking under it.
        """
        eid = self._ids.get(element)
        if eid is None:
            with self._lock:
                eid = self._ids.get(element)
                if eid is None:
                    eid = len(self._elements)
                    self._elements.append(element)
                    self._ids[element] = eid
        return eid

    def id_of(self, element: Element) -> Optional[int]:
        """The element's id, or ``None`` if it was never interned.

        The read-only probe used by lookups: a miss means the element
        occurs in no fact of any structure sharing this table.
        """
        return self._ids.get(element)

    def element(self, eid: int) -> Element:
        """Decode an id back to its element."""
        return self._elements[eid]
