"""The fact-store layer: pluggable backends behind one interface.

The *FactStore interface* is the public protocol of
:class:`~repro.lf.structures.Structure` — ``add_fact`` /
``discard_fact``, the index views, the restriction operators, value
``__eq__`` with :meth:`~repro.lf.structures.Structure.frozen_key`, and
COW-friendly ``copy()``.  Two backends implement it:

* the original dict/set-indexed :class:`~repro.lf.structures.Structure`
  (``StoreBackend.DICT``), and
* the interned columnar :class:`ColumnarStructure`
  (``StoreBackend.COLUMNAR``), whose int columns the compiled matchers
  in :mod:`repro.lf.plan` probe directly.

Engines pick a backend through the ``store`` field every
:class:`~repro.config.BudgetedConfig` carries (CLI: ``--store``;
environment: ``REPRO_STORE``) and normalise their input with
:func:`ensure_backend`.
"""

from __future__ import annotations

from typing import Optional

from ..lf.structures import Structure
from .backend import STORE_ENV_VAR, StoreBackend, resolve_backend
from .columnar import ColumnarStructure
from .termtable import TermTable

__all__ = [
    "STORE_ENV_VAR",
    "StoreBackend",
    "resolve_backend",
    "ColumnarStructure",
    "TermTable",
    "ensure_backend",
]


def ensure_backend(
    structure: Structure,
    backend: Optional[StoreBackend],
    copy: bool = True,
) -> Structure:
    """Return *structure* in the requested backend.

    ``backend=None`` (no explicit choice, no ``REPRO_STORE``) keeps
    whatever backend the input already uses.  When a conversion is
    needed it reuses the already-validated facts, skipping per-fact
    signature checks.  With *copy* true (the default) the result is
    always an independent structure, so engines can substitute this
    for their ``input.copy()`` step; with *copy* false the input
    itself is returned when it already matches.
    """
    wants_columnar = backend is StoreBackend.COLUMNAR
    if backend is None or wants_columnar == structure.is_columnar:
        return structure.copy() if copy else structure
    if wants_columnar:
        return ColumnarStructure.from_structure(structure)
    return Structure._from_validated(
        list(structure),
        set(structure.domain()),
        structure.signature,
        structure.strict,
    )
