"""The interned columnar fact-store backend.

A :class:`ColumnarStructure` stores each predicate's facts as flat
``array('q')`` columns of term ids (interned once in the store's
:class:`~repro.store.termtable.TermTable`), plus:

* ``rows`` — a dict from the id-tuple of a live fact to its row id
  (duplicate detection and ``has_fact`` in one hash lookup);
* ``index`` — hash buckets ``(position, value id) -> [row keys]``, the
  columnar analogue of the dict backend's
  ``(predicate, position, element)`` index (the bucket entries alias
  the ``rows`` key tuples, so matching reads boxed ints for free);
* ``atoms`` — the original :class:`~repro.lf.atoms.Atom` objects,
  parallel to the rows (``None`` marks a discarded row), so decoding a
  match back to atoms is a list lookup, not an object rebuild.

The compiled matchers in :mod:`repro.lf.plan` detect the backend via
the ``is_columnar`` class attribute and run their probe loop directly
over the int columns — comparing machine ints instead of hashing
elements per candidate fact.

``copy()`` is copy-on-write at per-relation granularity: a copy shares
the term table and every relation object (both sides marked
``shared``), and the first mutation of a predicate clones just that
relation (:meth:`_Relation.clone` — an array-level copy, or a
compacting rebuild when discarded rows have accumulated).  This is the
branching cost every fc-search state pays, hence the care.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..lf.atoms import Atom
from ..lf.signature import Signature
from ..lf.structures import Structure
from ..lf.terms import Element, Variable
from .termtable import TermTable

#: Shared empty view returned by index misses.
_EMPTY: Tuple[Atom, ...] = ()


class _Relation:
    """One predicate's columnar storage.  See the module docstring.

    The index buckets hold the row *key tuples* rather than row ids:
    the matcher's inner loop then tests ``key[position] != vid`` — one
    tuple index on already-boxed ints — instead of re-boxing a fresh
    int out of an array per test.  The bucket entries alias the exact
    tuple objects used as ``rows`` keys, so they cost one pointer each.
    The ``array('q')`` columns remain the positional storage the views
    and graph accessors read.
    """

    __slots__ = ("arity", "columns", "atoms", "rows", "index", "shared")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.columns: List[array] = [array("q") for _ in range(arity)]
        self.atoms: List[Optional[Atom]] = []
        self.rows: Dict[Tuple[int, ...], int] = {}
        self.index: Dict[Tuple[int, int], List[Tuple[int, ...]]] = {}
        self.shared = False

    def clone(self) -> "_Relation":
        """An unshared copy; compacts away discarded rows when any exist."""
        new = _Relation.__new__(_Relation)
        new.arity = self.arity
        new.shared = False
        if len(self.rows) == len(self.atoms):
            # no tombstones: bulk array/dict copies (C speed)
            new.columns = [array("q", column) for column in self.columns]
            new.atoms = list(self.atoms)
            new.rows = dict(self.rows)
            new.index = {key: list(bucket) for key, bucket in self.index.items()}
            return new
        new.columns = [array("q") for _ in range(self.arity)]
        new.atoms = []
        new.rows = {}
        new.index = {}
        columns = new.columns
        atoms = self.atoms
        for key, rid in self.rows.items():
            new_rid = len(new.atoms)
            new.atoms.append(atoms[rid])
            for position, vid in enumerate(key):
                columns[position].append(vid)
                new.index.setdefault((position, vid), []).append(key)
            new.rows[key] = new_rid
        return new

    def add(self, key: Tuple[int, ...], fact: Atom) -> None:
        """Append a new live row (caller has already checked ``rows``)."""
        rid = len(self.atoms)
        self.atoms.append(fact)
        for position, vid in enumerate(key):
            self.columns[position].append(vid)
            self.index.setdefault((position, vid), []).append(key)
        self.rows[key] = rid

    def discard(self, key: Tuple[int, ...]) -> None:
        """Tombstone the row for *key* (caller has checked it is live)."""
        rid = self.rows.pop(key)
        self.atoms[rid] = None
        for position, vid in enumerate(key):
            bucket_key = (position, vid)
            bucket = self.index[bucket_key]
            bucket.remove(key)
            if not bucket:
                del self.index[bucket_key]

    def atom_of(self, key: Tuple[int, ...]) -> Atom:
        """Decode a live row key back to its atom."""
        return self.atoms[self.rows[key]]

    def live_atoms(self) -> List[Atom]:
        """The live facts, decoded (a fresh list)."""
        atoms = self.atoms
        return [atoms[rid] for rid in self.rows.values()]


class ColumnarStructure(Structure):
    """A :class:`~repro.lf.structures.Structure` with interned columnar
    storage.

    Drop-in semantically: same constructor signature, same public
    protocol, same validation (signature growth, arity checks, strict
    mode), value equality across backends.  Only the representation —
    and therefore the performance profile — differs.
    """

    is_columnar = True

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        domain: Iterable[Element] = (),
        signature: Optional[Signature] = None,
        strict: bool = False,
        table: Optional[TermTable] = None,
    ):
        self._table = table if table is not None else TermTable()
        self._rels: Dict[str, _Relation] = {}
        self._domain: Set[Element] = set(domain)
        self._probe_count = 0
        self._count = 0
        self._strict = strict
        self._signature = signature if signature is not None else Signature.make()
        for fact in facts:
            self.add_fact(fact)

    @classmethod
    def from_structure(cls, structure: Structure) -> "ColumnarStructure":
        """Convert any backend's structure (facts already validated)."""
        clone = cls(
            domain=structure.domain(),
            signature=structure.signature,
            strict=structure.strict,
        )
        intern = clone._table.intern
        rels = clone._rels
        for fact in structure:
            key = tuple(intern(arg) for arg in fact.args)
            rel = rels.get(fact.pred)
            if rel is None:
                rel = _Relation(fact.arity)
                rels[fact.pred] = rel
            rel.add(key, fact)
        clone._count = len(structure)
        return clone

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _writable(self, pred: str, arity: int) -> _Relation:
        """The relation for *pred*, created or un-shared as needed."""
        rel = self._rels.get(pred)
        if rel is None:
            rel = _Relation(arity)
            self._rels[pred] = rel
        elif rel.shared:
            rel = rel.clone()
            self._rels[pred] = rel
        return rel

    def add_fact(self, fact: Atom) -> bool:
        for arg in fact.args:
            if isinstance(arg, Variable):
                raise ValueError(f"fact {fact} contains a variable")
        intern = self._table.intern
        key = tuple(intern(arg) for arg in fact.args)
        rel = self._rels.get(fact.pred)
        if rel is not None and key in rel.rows:
            return False
        self._check_signature(fact)
        self._writable(fact.pred, fact.arity).add(key, fact)
        self._domain.update(fact.args)
        self._count += 1
        return True

    def discard_fact(self, fact: Atom) -> bool:
        rel = self._rels.get(fact.pred)
        if rel is None:
            return False
        try:
            key = tuple(map(self._table._ids.__getitem__, fact.args))
        except KeyError:
            return False  # some argument interned nowhere
        if key not in rel.rows:
            return False
        rel = self._writable(fact.pred, rel.arity)
        rel.discard(key)
        self._count -= 1
        if not rel.rows:
            # same pruning contract as the dict backend: no empty husks
            del self._rels[fact.pred]
        return True

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def facts(self) -> FrozenSet[Atom]:
        return frozenset(self)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Atom]:
        for rel in self._rels.values():
            atoms = rel.atoms
            for rid in rel.rows.values():
                yield atoms[rid]

    def has_fact(self, fact: Atom) -> bool:
        rel = self._rels.get(fact.pred)
        if rel is None or rel.arity != fact.arity:
            return False
        try:
            return tuple(map(self._table._ids.__getitem__, fact.args)) in rel.rows
        except KeyError:
            return False  # some argument interned nowhere

    __contains__ = has_fact

    def facts_with_pred_view(self, pred: str) -> Tuple[Atom, ...]:
        """All facts of *pred*, decoded.  Same read-only contract as the
        dict backend's view (here the tuple is a fresh decode, so the
        planned matcher uses the int columns directly instead)."""
        self._probe_count += 1
        rel = self._rels.get(pred)
        if rel is None:
            return _EMPTY
        return tuple(rel.live_atoms())

    def facts_with_view(
        self, pred: str, position: int, element: Element
    ) -> Tuple[Atom, ...]:
        self._probe_count += 1
        rel = self._rels.get(pred)
        if rel is None or position >= rel.arity:
            return _EMPTY
        vid = self._table.id_of(element)
        if vid is None:
            return _EMPTY
        bucket = rel.index.get((position, vid))
        if not bucket:
            return _EMPTY
        atoms = rel.atoms
        rows = rel.rows
        return tuple(atoms[rows[key]] for key in bucket)

    def pred_size(self, pred: str) -> int:
        rel = self._rels.get(pred)
        return len(rel.rows) if rel is not None else 0

    def facts_about(self, element: Element) -> FrozenSet[Atom]:
        vid = self._table.id_of(element)
        if vid is None:
            return frozenset()
        found: Set[Atom] = set()
        for rel in self._rels.values():
            atoms = rel.atoms
            rows = rel.rows
            for position in range(rel.arity):
                bucket = rel.index.get((position, vid))
                if bucket:
                    found.update(atoms[rows[key]] for key in bucket)
        return frozenset(found)

    def predicates_in_use(self) -> FrozenSet[str]:
        return frozenset(self._rels)

    def successors(
        self, element: Element, pred: Optional[str] = None
    ) -> FrozenSet[Element]:
        preds = [pred] if pred is not None else sorted(self._signature.binary_relations())
        vid = self._table.id_of(element)
        if vid is None:
            return frozenset()
        found: Set[Element] = set()
        decode = self._table.element
        for name in preds:
            rel = self._rels.get(name)
            if rel is None or rel.arity != 2:
                continue
            for key in rel.index.get((0, vid), ()):
                found.add(decode(key[1]))
        return frozenset(found)

    def predecessors(
        self, element: Element, pred: Optional[str] = None
    ) -> FrozenSet[Element]:
        preds = [pred] if pred is not None else sorted(self._signature.binary_relations())
        vid = self._table.id_of(element)
        if vid is None:
            return frozenset()
        found: Set[Element] = set()
        decode = self._table.element
        for name in preds:
            rel = self._rels.get(name)
            if rel is None or rel.arity != 2:
                continue
            for key in rel.index.get((1, vid), ()):
                found.add(decode(key[0]))
        return frozenset(found)

    # ------------------------------------------------------------------
    # Restrictions
    # ------------------------------------------------------------------
    def _empty_like(self, signature: Signature, domain: Set[Element]) -> "ColumnarStructure":
        clone = ColumnarStructure.__new__(ColumnarStructure)
        clone._table = self._table  # append-only, safe to share
        clone._rels = {}
        clone._domain = domain
        clone._probe_count = 0
        clone._count = 0
        clone._strict = self._strict
        clone._signature = signature
        return clone

    def restrict_elements(self, elements: Iterable[Element]) -> "ColumnarStructure":
        wanted = set(elements) & self._domain
        id_of = self._table.id_of
        wanted_ids = {vid for vid in map(id_of, wanted) if vid is not None}
        clone = self._empty_like(self._signature, wanted)
        count = 0
        for pred, rel in self._rels.items():
            new_rel: Optional[_Relation] = None
            atoms = rel.atoms
            for key, rid in rel.rows.items():
                if all(vid in wanted_ids for vid in key):
                    if new_rel is None:
                        new_rel = _Relation(rel.arity)
                        clone._rels[pred] = new_rel
                    new_rel.add(key, atoms[rid])
                    count += 1
        clone._count = count
        return clone

    def restrict_signature(self, names: Iterable[str]) -> "ColumnarStructure":
        wanted = set(names)
        clone = self._empty_like(
            self._signature.restrict_to(wanted), set(self._domain)
        )
        count = 0
        for pred, rel in self._rels.items():
            if pred in wanted:
                rel.shared = True  # shared with the restriction (COW)
                clone._rels[pred] = rel
                count += len(rel.rows)
        clone._count = count
        return clone

    # ------------------------------------------------------------------
    # Copying and presentation
    # ------------------------------------------------------------------
    def copy(self) -> "ColumnarStructure":
        """A copy-on-write copy: shares the term table and every
        relation; the first mutation of a predicate (on either side)
        clones just that relation.  The probe counter restarts."""
        clone = self._empty_like(self._signature, set(self._domain))
        for rel in self._rels.values():
            rel.shared = True
        clone._rels = dict(self._rels)
        clone._count = self._count
        return clone

    def sorted_facts(self) -> List[Atom]:
        return sorted(self, key=lambda f: (f.pred, tuple(map(str, f.args))))
