"""E05 — Examples 5 & 6: who is ptp-conservative and who is not.

The chain always admits a conservative natural coloring (Example 5 /
the Main Lemma for its simplest VTDAG); the total order defeats every
bounded palette (Example 6), with the tell-tale ``E(y, y)`` witness.

Measured: the conservativity search on the chain, and the failure
detection on orders of growing length.
"""

import pytest

from repro.coloring import conservativity_report, cyclic_coloring, find_conservative
from repro.lf import Null, Structure, atom


def chain(length):
    n = [Null(i) for i in range(length + 1)]
    return Structure(atom("E", n[i], n[i + 1]) for i in range(length))


def total_order(size):
    n = [Null(i) for i in range(size)]
    return Structure(
        atom("E", n[i], n[j]) for i in range(size) for j in range(i + 1, size)
    )


@pytest.mark.parametrize("m", [1, 2])
def test_chain_conservative_search(benchmark, m):
    structure = chain(20)

    def run():
        return find_conservative(structure, m)

    witness = benchmark(run)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["n_found"] = witness.n
    benchmark.extra_info["palette"] = witness.colored.palette_size
    benchmark.extra_info["quotient_size"] = witness.quotient.size
    assert witness.quotient.size < structure.domain_size


@pytest.mark.parametrize("palette", [2, 3])
def test_order_defeats_bounded_palette(benchmark, palette):
    order = total_order(4 * palette)
    colored = cyclic_coloring(order, palette)

    def run():
        return conservativity_report(colored, n=2, m=1)

    report = benchmark(run)
    benchmark.extra_info["palette"] = palette
    benchmark.extra_info["order_size"] = 4 * palette
    benchmark.extra_info["witness"] = str(report.witness_query)
    assert not report.conservative
    assert "E(y, y)" in str(report.witness_query)
