"""E15 — Theorem 3: finite counter-models beyond binary signatures.

A ternary frontier-1 theory is run through the pipeline via the §5.1
head split; the counter-model is verified against the *original*
ternary theory.  Also measures the k_Ψ derivation-depth certificates of
the rewriting engine against observed chase depths.
"""

from repro.chase import ChaseConfig, chase, observed_derivation_depth
from repro.core import PipelineConfig, build_finite_counter_model
from repro.chase.engine import is_model
from repro.lf import parse_query, parse_structure, parse_theory, satisfies
from repro.rewriting import rewrite


def test_theorem3_pipeline(benchmark):
    theory = parse_theory(
        """
        T(x,y,z) -> exists u, w. T(z, u, w)
        T(x,y,z), B(z) -> M(x,y)
        """
    )
    database = parse_structure("T(a,b,c)\nB(c)")
    query = parse_query("M(x,x)")
    config = PipelineConfig(chase_depths=(32,))

    def run():
        return build_finite_counter_model(theory, database, query, config)

    result = benchmark(run)
    benchmark.extra_info["model_size"] = result.model_size
    benchmark.extra_info["kappa"] = result.kappa
    benchmark.extra_info["eta"] = result.eta
    assert result.model is not None
    assert is_model(result.model, theory)
    assert not satisfies(result.model, query.boolean())


def test_depth_bound_certificate(benchmark):
    """k_Ψ from the rewriting bounds the observed derivation depth."""
    theory = parse_theory(
        """
        E(x,y) -> exists z. E(y,z)
        E(x,y), E(u,y) -> R(x,u)
        R(x,y) -> S(x,y)
        """
    )
    database = parse_structure("E(a,b)")
    query = parse_query("S(x,y)")

    def run():
        return rewrite(query, theory)

    result = benchmark(run)
    chased = chase(database, theory, ChaseConfig(max_depth=8))
    observed = observed_derivation_depth(chased, query)
    benchmark.extra_info["k_psi"] = result.depth_bound
    benchmark.extra_info["observed_depth"] = observed
    assert result.saturated
    assert observed is not None
    assert observed <= result.depth_bound
