"""P02 — positive-type machinery scaling: ``≡_n`` in |C| and n.

Partitioning chains and trees; the canonical-subquery reduction with
connected-subset enumeration should stay polynomial on these shapes.
"""

import pytest

from repro.ptypes import TypePartition, quotient
from repro.zoo import binary_tree_structure, chain_structure


@pytest.mark.parametrize("length", [25, 50, 100])
def test_partition_scaling_in_size(benchmark, length):
    structure = chain_structure(length)

    def run():
        return TypePartition(structure, 3).classes()

    classes = benchmark(run)
    benchmark.extra_info["length"] = length
    benchmark.extra_info["classes"] = len(classes)
    assert len(classes) == 5  # boundary effects only


@pytest.mark.parametrize("n", [2, 3, 4])
def test_partition_scaling_in_n(benchmark, n):
    structure = chain_structure(40)

    def run():
        return TypePartition(structure, n).classes()

    classes = benchmark(run)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["classes"] = len(classes)
    assert len(classes) == 2 * n - 1


@pytest.mark.parametrize("depth", [4, 5, 6])
def test_quotient_on_trees(benchmark, depth):
    tree = binary_tree_structure(depth)

    def run():
        return quotient(tree, 2)

    quotiented = benchmark(run)
    benchmark.extra_info["tree_elements"] = tree.domain_size
    benchmark.extra_info["quotient_size"] = quotiented.size
    assert quotiented.size < tree.domain_size
