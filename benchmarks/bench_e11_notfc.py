"""E11 — Section 5.5: the non-FC theory that defines no ordering.

Three measured claims:

* the chase avoids Φ = E(x,y) ∧ R(y,y) (at every truncation we run);
* *every* finite model with ≤ N elements satisfies Φ — proved by
  exhaustive search, for growing N;
* the ordering detector finds nothing here, yet instantly finds the
  ordering in successor+transitivity (the contrast pair).
"""

import pytest

from repro.chase import certain_boolean
from repro.fc import every_finite_model_satisfies, find_ordering
from repro.lf import parse_structure
from repro.zoo import (
    remark3_theory,
    section55_database,
    section55_query,
    section55_theory,
)


def test_chase_avoids_phi(benchmark):
    theory, database = section55_theory(), section55_database()
    phi = section55_query().boolean()

    def run():
        return certain_boolean(database, theory, phi, max_depth=10)

    verdict = benchmark(run)
    benchmark.extra_info["verdict"] = str(verdict)
    assert verdict is not True


@pytest.mark.parametrize("max_elements", [4, 5, 6])
def test_every_finite_model_satisfies_phi(benchmark, max_elements):
    theory, database = section55_theory(), section55_database()
    phi = section55_query().boolean()

    def run():
        return every_finite_model_satisfies(
            database, theory, phi, max_elements=max_elements, max_nodes=100_000
        )

    verdict, stats = benchmark(run)
    benchmark.extra_info["max_elements"] = max_elements
    benchmark.extra_info["states_explored"] = stats.nodes
    benchmark.extra_info["exhausted"] = stats.exhausted
    assert verdict
    assert stats.exhausted


def test_no_ordering_here(benchmark):
    theory, database = section55_theory(), section55_database()

    def run():
        return find_ordering(theory, database, min_size=5)

    witness = benchmark(run)
    benchmark.extra_info["found"] = str(witness)
    assert witness is None


def test_ordering_in_natural_example(benchmark):
    theory = remark3_theory()
    database = parse_structure("E(a,b)")

    def run():
        return find_ordering(theory, database, min_size=5)

    witness = benchmark(run)
    benchmark.extra_info["query"] = str(witness.query)
    benchmark.extra_info["chain"] = witness.size
    assert witness is not None and witness.size >= 5
