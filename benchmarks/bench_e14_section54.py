"""E14 — Section 5.4: why M_n is too poor to be a model beyond binary.

The quaternary theory

    R(x, x', y, z) ⇒ E(y, z)
    E(x, y), E(t, y) ⇒ ∃z R(x, t, y, z)

is BDD, and its chase of ``{E(a,b)}`` is a simple E-chain with
``R(x, x, y, z)`` for consecutive elements.  But *fold the chain into a
cycle* (the quotient-style identification every finite-model attempt
must make) and a fresh body match ``E(x,y), E(t,y)`` with ``x ≠ t``
appears at the wrap point; its witness is a function of the whole tuple,
cannot be reused — and the fresh witness spawns a whole new E-chain.

The contrast: the binary Example 7 theory under the *same* fold merely
derives new R-*atoms* (Lemma 5: no new elements).

Measured: divergence (new elements per depth) of the folded quaternary
chase vs saturation of the folded binary chase.
"""

from repro.chase import ChaseConfig, chase, chase_with_embargo
from repro.errors import NewElementEmbargoViolation
from repro.lf import Null, Structure
from repro.zoo import (
    example7_database,
    example7_theory,
    section54_database,
    section54_theory,
)


def _chain_order(structure):
    """The chase chain in creation order: constants first, then nulls."""
    constants = sorted(structure.constant_elements(), key=str)
    nulls = sorted(
        (e for e in structure.domain() if isinstance(e, Null)),
        key=lambda e: e.ident,
    )
    return constants + nulls


def _fold(structure, start, period):
    """Fold the tail of the chain back onto a cycle of the given period."""
    order = _chain_order(structure)
    mapping = {}
    for position, element in enumerate(order):
        if position < start + period:
            mapping[element] = element
        else:
            wrapped = start + ((position - start) % period)
            mapping[element] = order[wrapped]
    folded = Structure(signature=structure.signature)
    for fact in structure.facts():
        folded.add_fact(fact.substitute(mapping))
    return folded


def test_quaternary_fold_diverges(benchmark):
    theory, database = section54_theory(), section54_database()
    chased = chase(database, theory, ChaseConfig(max_depth=10))
    folded = _fold(chased.structure, start=2, period=4)

    # Lemma 5 fails here: the wrap point demands a fresh witness.
    try:
        chase_with_embargo(folded, theory, max_depth=10)
        embargo_violated = False
    except NewElementEmbargoViolation:
        embargo_violated = True
    assert embargo_violated

    def run():
        return chase(folded, theory, ChaseConfig(max_depth=8))

    regrown = benchmark(run)
    benchmark.extra_info["new_elements_after_fold"] = len(regrown.new_elements)
    benchmark.extra_info["saturated"] = regrown.saturated
    # the fresh witness spawns a new chain: growth, not saturation
    assert len(regrown.new_elements) >= 4
    assert not regrown.saturated


def test_binary_fold_saturates(benchmark):
    theory, database = example7_theory(), example7_database()
    chased = chase(database, theory, ChaseConfig(max_depth=10))
    folded = _fold(chased.structure, start=2, period=4)

    def run():
        return chase_with_embargo(folded, theory, max_depth=None)

    result = benchmark(run)
    new_r = result.structure.facts_with_pred("R") - chased.structure.facts_with_pred("R")
    benchmark.extra_info["new_r_atoms"] = len(new_r)
    benchmark.extra_info["new_elements"] = len(result.new_elements)
    assert result.saturated
    assert not result.new_elements
    # the fold creates confluences, so new R-atoms are derived — but
    # only atoms, never elements (the binary Lemma 5 discipline)
    assert new_r
