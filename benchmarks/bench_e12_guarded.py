"""E12 — Section 5.6: guarded → binary, measured.

The translation itself (rule blow-up is the paper's "all possible rules
of the form (♠11)"), database/query translation, and certain-answer
agreement between the guarded original and its binary disguise.
"""

import pytest

from repro.chase import certain_boolean
from repro.lf import parse_query
from repro.transforms import guarded_to_binary
from repro.zoo import guarded_example_database, guarded_example_theory

QUERIES = [("G('c')", True), ("G('a')", False), ("R('b','c',w)", True)]


def test_translation_construction(benchmark):
    theory = guarded_example_theory()

    def run():
        return guarded_to_binary(theory)

    translation = benchmark(run)
    benchmark.extra_info["original_rules"] = len(theory)
    benchmark.extra_info["binary_rules"] = len(translation.theory)
    benchmark.extra_info["parent_indices"] = translation.parent_count
    assert translation.theory.signature.is_binary


@pytest.mark.parametrize("query_text,expected", QUERIES, ids=[q for q, _ in QUERIES])
def test_certain_answer_agreement(benchmark, query_text, expected):
    theory, database = guarded_example_theory(), guarded_example_database()
    translation = guarded_to_binary(theory)
    translated_db = translation.translate_database(database)
    query = parse_query(query_text)
    translated_query = translation.translate_query(query)

    def run():
        return certain_boolean(
            translated_db, translation.theory, translated_query, max_depth=8
        )

    binary_verdict = benchmark(run)
    original_verdict = certain_boolean(database, theory, query, max_depth=4)
    benchmark.extra_info["original"] = str(original_verdict)
    benchmark.extra_info["binary"] = str(binary_verdict)
    if expected:
        assert original_verdict is True and binary_verdict is True
    else:
        assert original_verdict is not True and binary_verdict is not True
