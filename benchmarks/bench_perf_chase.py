"""P01 — chase throughput: facts per second vs database size.

Transitive closure over random graphs (datalog, saturating) and the
growing linear chase (existential, truncated).
"""

import pytest

from repro.chase import ChaseConfig, ChaseStrategy, chase
from repro.zoo import chain_growth_theory, random_edges_database, transitive_theory


@pytest.mark.parametrize("size,edges", [(20, 40), (40, 80), (60, 120)])
def test_transitive_closure_scaling(benchmark, size, edges):
    theory = transitive_theory()
    database = random_edges_database(size, edges, seed=42)

    def run():
        return chase(database, theory, ChaseConfig(max_depth=None, max_facts=500_000))

    result = benchmark(run)
    benchmark.extra_info["input_edges"] = edges
    benchmark.extra_info["output_facts"] = len(result.structure)
    assert result.saturated


@pytest.mark.parametrize("depth", [10, 20, 40])
def test_linear_growth_scaling(benchmark, depth):
    theory = chain_growth_theory(3)
    database = random_edges_database(4, 6, predicates=("P0",), seed=7)

    def run():
        return chase(database, theory, ChaseConfig(max_depth=depth))

    result = benchmark(run)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["elements"] = result.structure.domain_size
    assert result.depth == depth


@pytest.mark.parametrize("strategy", [ChaseStrategy.NAIVE, ChaseStrategy.DELTA])
def test_strategy_on_deep_recursive_chain(benchmark, strategy):
    """The tentpole workload: a deep existential recursive chain.

    The naive strategy re-enumerates every settled trigger each round
    (quadratic in depth); the delta strategy joins only through the last
    round's delta.  The trigger counters quantify the asymptotic gap
    next to the timings.
    """
    theory = chain_growth_theory(3)
    database = random_edges_database(4, 6, predicates=("P0",), seed=7)
    config = ChaseConfig(max_depth=40, strategy=strategy)

    def run():
        return chase(database, theory, config)

    result = benchmark(run)
    benchmark.extra_info["strategy"] = strategy.value
    benchmark.extra_info["triggers_evaluated"] = result.stats.triggers_evaluated
    benchmark.extra_info["index_probes"] = result.stats.index_probes
    benchmark.extra_info["facts"] = len(result.structure)
    assert result.depth == 40


@pytest.mark.parametrize("delta_size,churn", [(1, 0.5), (4, 0.5), (1, 0.0)])
def test_streaming_churn_incremental(benchmark, delta_size, churn):
    """Streaming churn: maintain a TC view under insert/retract batches.

    The workload the incremental view exists for — small deltas against
    a large settled fixpoint.  The same stream feeds the smoke
    benchmark's incremental-vs-rechase comparison (BENCH_incr.json);
    the dials cover single-op and batched deltas plus a pure-insert
    stream.
    """
    from repro.chase import ChaseView, IncrementalConfig
    from repro.zoo import churn_stream

    theory = transitive_theory()
    database = random_edges_database(30, 60, seed=11)
    stream = churn_stream(
        database, batches=10, delta_size=delta_size, churn=churn, seed=11
    )

    def run():
        view = ChaseView(database, theory, IncrementalConfig(max_depth=None))
        for adds, removes in stream:
            view.update(adds=adds, removes=removes)
        return view

    view = benchmark(run)
    benchmark.extra_info["delta_size"] = delta_size
    benchmark.extra_info["churn"] = churn
    benchmark.extra_info["facts"] = len(view)
    benchmark.extra_info["overdeleted"] = sum(
        s.overdeleted for s in view.update_stats
    )
    benchmark.extra_info["rederived"] = sum(s.rederived for s in view.update_stats)
    assert view.saturated
