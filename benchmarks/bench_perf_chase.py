"""P01 — chase throughput: facts per second vs database size.

Transitive closure over random graphs (datalog, saturating) and the
growing linear chase (existential, truncated).
"""

import pytest

from repro.chase import ChaseConfig, chase
from repro.zoo import chain_growth_theory, random_edges_database, transitive_theory


@pytest.mark.parametrize("size,edges", [(20, 40), (40, 80), (60, 120)])
def test_transitive_closure_scaling(benchmark, size, edges):
    theory = transitive_theory()
    database = random_edges_database(size, edges, seed=42)

    def run():
        return chase(database, theory, ChaseConfig(max_depth=None, max_facts=500_000))

    result = benchmark(run)
    benchmark.extra_info["input_edges"] = edges
    benchmark.extra_info["output_facts"] = len(result.structure)
    assert result.saturated


@pytest.mark.parametrize("depth", [10, 20, 40])
def test_linear_growth_scaling(benchmark, depth):
    theory = chain_growth_theory(3)
    database = random_edges_database(4, 6, predicates=("P0",), seed=7)

    def run():
        return chase(database, theory, ChaseConfig(max_depth=depth))

    result = benchmark(run)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["elements"] = result.structure.domain_size
    assert result.depth == depth
