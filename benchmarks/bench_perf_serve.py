"""P07 — serve-mode latency: warm sessions vs cold per-request state.

One long-lived :class:`~repro.serve.ServerThread` answers the
Theorem-2 corpus request mix over a real loopback socket.  The
``warm`` mode reuses one tenant — parsed theories, compiled plans, the
subsumption memo, and finished rewritings all persist between
requests.  The ``cold`` mode simulates one-shot CLI economics inside
the same transport: a fresh tenant per request and the process-wide
caches cleared, so every request pays parse + plan-compile + full
rewriting again.  The smoke scoreboard (``BENCH_serve.json``, bar:
warm >= 3x cold on the corpus mix with p99 under the SLA) reports the
same contrast without pytest-benchmark.
"""

import itertools

import pytest

from repro.lf import clear_plan_cache
from repro.lf.io import atom_to_text, query_to_text, theory_to_text
from repro.rewriting import clear_subsume_cache
from repro.serve import ServerThread
from repro.zoo import theorem2_corpus


def corpus_texts():
    out = []
    for name, theory, database, query in theorem2_corpus():
        out.append((
            name,
            theory_to_text(theory),
            "\n".join(
                atom_to_text(fact)
                for fact in sorted(database.facts(), key=str)
            ),
            query_to_text(query),
            [str(v) for v in query.free],
        ))
    return out


CORPUS = corpus_texts()
_cold_ids = itertools.count()


@pytest.fixture(scope="module")
def client():
    with ServerThread(workers=2) as handle:
        with handle.client(timeout=300) as c:
            yield c


@pytest.mark.parametrize("mode", ["warm", "cold"])
@pytest.mark.parametrize(
    "entry", CORPUS, ids=[entry[0] for entry in CORPUS]
)
def test_serve_request_mix(benchmark, client, mode, entry):
    """rewrite + chase + certain for one corpus entry, per mode."""
    name, ttext, dtext, qtext, free = entry

    def run():
        if mode == "cold":
            clear_plan_cache()
            clear_subsume_cache()
            tenant = f"cold-{next(_cold_ids)}"
        else:
            tenant = "warm"
        responses = [
            client.request("rewrite", tenant=tenant, theory=ttext,
                           query=qtext, free=free),
            client.request("chase", tenant=tenant, theory=ttext,
                           database=dtext, params={"depth": 6}),
            client.request("certain", tenant=tenant, theory=ttext,
                           database=dtext, query=qtext, free=free,
                           params={"depth": 6}),
        ]
        assert all(r["status"] != "error" for r in responses), responses
        return responses

    benchmark(run)
    benchmark.extra_info["workload"] = name
    benchmark.extra_info["mode"] = mode
