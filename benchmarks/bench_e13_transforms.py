"""E13 — Sections 5.1–5.3: the transformation battery.

Each transformation is timed and checked to preserve certain answers on
its reference example: frontier-1 head splitting (§5.1), the ternary
reduction (§5.2), and the multi-head ↔ single-head / binary-atom
encodings (§5.3).
"""

from repro.chase import certain_boolean, chase
from repro.lf import Rule, Variable, atom, parse_query, parse_structure, parse_theory
from repro.lf.rules import Theory
from repro.transforms import (
    atoms_to_binary_encoding,
    decode_structure_binary,
    encode_structure_binary,
    multihead_to_singlehead,
    split_frontier_one_heads,
    ternary_reduction,
)

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def test_frontier_one_split(benchmark):
    theory = Theory([Rule((atom("U", y),), (atom("T", y, z, w),))])
    database = parse_structure("U(a)")
    query = parse_query("T('a', v, u)")

    def run():
        return split_frontier_one_heads(theory)

    converted = benchmark(run)
    benchmark.extra_info["rules_before"] = len(theory)
    benchmark.extra_info["rules_after"] = len(converted)
    assert certain_boolean(database, converted, query, max_depth=4) is True


def test_ternary_reduction_roundtrip(benchmark):
    theory = parse_theory("P(x,y,z,x) -> exists t. R(x,y,z,t)")
    database = parse_structure("P(a,b,c,a)")
    query = parse_query("R('a','b','c',t)")

    def run():
        reduction = ternary_reduction(theory)
        translated_db = reduction.translate_database(database)
        translated_query = reduction.translate_query(query)
        return reduction, translated_db, translated_query

    reduction, translated_db, translated_query = benchmark(run)
    benchmark.extra_info["max_arity_after"] = reduction.theory.signature.max_arity
    assert (
        certain_boolean(translated_db, reduction.theory, translated_query, max_depth=6)
        is True
    )


def test_multihead_join_encoding(benchmark):
    theory = Theory([Rule((atom("U", x),), (atom("R", x, z), atom("S", z, x)))])
    database = parse_structure("U(a)")
    query = parse_query("R('a', v), S(v, 'a')")

    def run():
        return multihead_to_singlehead(theory)

    converted = benchmark(run)
    benchmark.extra_info["rules_after"] = len(converted)
    assert converted.is_single_head
    assert certain_boolean(database, converted, query, max_depth=4) is True


def test_binary_atom_encoding_roundtrip(benchmark):
    theory = parse_theory("P(x,y,z) -> exists w. P(y,z,w)")
    database = parse_structure("P(a,b,c)")

    def run():
        encoded_theory = atoms_to_binary_encoding(theory)
        encoded_db = encode_structure_binary(database)
        result = chase(encoded_db, encoded_theory, max_depth=2)
        return decode_structure_binary(result.structure, database.signature)

    decoded = benchmark(run)
    original = chase(database, theory, max_depth=2)
    benchmark.extra_info["original_p_atoms"] = len(
        original.structure.facts_with_pred("P")
    )
    benchmark.extra_info["decoded_p_atoms"] = len(decoded.facts_with_pred("P"))
    assert len(decoded.facts_with_pred("P")) == len(
        original.structure.facts_with_pred("P")
    )
