"""P03 — rewriting-engine scaling: closure size vs theory size.

Random linear theories (always BDD-friendly shapes) with growing rule
counts; the UCQ closure and the κ profile.
"""

import pytest

from repro.lf import parse_query
from repro.rewriting import RewriteConfig, bdd_profile, rewrite
from repro.zoo import random_linear_theory
from repro.config import OnBudget

CONFIG = RewriteConfig(max_steps=50_000, max_queries=5_000, on_budget=OnBudget.RETURN)


@pytest.mark.parametrize("rules", [4, 8, 12])
def test_rewriting_scaling_in_rules(benchmark, rules):
    theory = random_linear_theory(predicates=3, rules=rules, seed=11)
    query = parse_query("P0(x,y), P1(y,z)")

    def run():
        return rewrite(query, theory, CONFIG)

    result = benchmark(run)
    benchmark.extra_info["rules"] = rules
    benchmark.extra_info["disjuncts"] = len(result.ucq)
    benchmark.extra_info["steps"] = result.steps
    benchmark.extra_info["saturated"] = result.saturated
    assert result.saturated


@pytest.mark.parametrize("predicates", [2, 3, 4])
def test_kappa_profile_scaling(benchmark, predicates):
    theory = random_linear_theory(predicates=predicates, rules=2 * predicates, seed=5)

    def run():
        return bdd_profile(theory, CONFIG)

    profile = benchmark(run)
    benchmark.extra_info["predicates"] = predicates
    benchmark.extra_info["kappa"] = profile.kappa
    benchmark.extra_info["saturated"] = profile.saturated
    assert profile.saturated
