"""P03 — rewriting-engine scaling: closure size vs theory size.

Random linear theories (always BDD-friendly shapes) with growing rule
counts; the UCQ closure and the κ profile.  The ``engine`` axis runs
the same workload under the indexed worklist engine and the quadratic
``legacy_rewrite`` baseline — the ablation the EXPERIMENTS table and
``BENCH_rewrite.json`` report.
"""

import pytest

from repro.lf import parse_query
from repro.rewriting import (
    RewriteConfig,
    bdd_profile,
    clear_subsume_cache,
    legacy_rewrite,
    rewrite,
)
from repro.zoo import random_linear_theory, theorem2_corpus
from repro.config import OnBudget

CONFIG = RewriteConfig(max_steps=50_000, max_queries=5_000, on_budget=OnBudget.RETURN)

ENGINES = {"indexed": rewrite, "legacy": legacy_rewrite}


@pytest.mark.parametrize("rules", [4, 8, 12])
def test_rewriting_scaling_in_rules(benchmark, rules):
    theory = random_linear_theory(predicates=3, rules=rules, seed=11)
    query = parse_query("P0(x,y), P1(y,z)")

    def run():
        return rewrite(query, theory, CONFIG)

    result = benchmark(run)
    benchmark.extra_info["rules"] = rules
    benchmark.extra_info["disjuncts"] = len(result.ucq)
    benchmark.extra_info["steps"] = result.steps
    benchmark.extra_info["saturated"] = result.saturated
    assert result.saturated


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("rules", [8, 12])
def test_engine_contrast_linear(benchmark, engine, rules):
    """Indexed vs legacy on the same growing linear workload."""
    theory = random_linear_theory(predicates=4, rules=rules, seed=11)
    query = parse_query("P0(x,y), P1(y,z), P2(z,w)")

    def run():
        clear_subsume_cache()
        return ENGINES[engine](query, theory, CONFIG)

    result = benchmark(run)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["rules"] = rules
    benchmark.extra_info["disjuncts"] = len(result.ucq)
    benchmark.extra_info["candidates"] = result.stats.candidates
    assert result.saturated


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_engine_contrast_corpus_stress(benchmark, engine):
    """The acceptance workload: the extended Theorem-2 corpus's
    ``linear-mix/P5-cycle-stress`` entry under both engines."""
    name, theory, _db, query = theorem2_corpus(extended=True)[-1]
    assert name == "linear-mix/P5-cycle-stress"
    config = CONFIG.with_overrides(max_queries=2_000)

    def run():
        clear_subsume_cache()
        return ENGINES[engine](query, theory, config)

    result = benchmark(run)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["disjuncts"] = len(result.ucq)
    benchmark.extra_info["candidates"] = result.stats.candidates
    benchmark.extra_info["saturated"] = result.saturated


@pytest.mark.parametrize("predicates", [2, 3, 4])
def test_kappa_profile_scaling(benchmark, predicates):
    theory = random_linear_theory(predicates=predicates, rules=2 * predicates, seed=5)

    def run():
        return bdd_profile(theory, CONFIG)

    profile = benchmark(run)
    benchmark.extra_info["predicates"] = predicates
    benchmark.extra_info["kappa"] = profile.kappa
    benchmark.extra_info["saturated"] = profile.saturated
    assert profile.saturated
