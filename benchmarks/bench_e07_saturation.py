"""E07 — Examples 7 & 8 and Lemma 5: datalog saturation on the quotient.

The quotient of Example 7's skeleton satisfies all existential TGDs but
not the confluence datalog rule; saturating derives R-atoms that are
*not* projections of any chase atom (Example 8) — and, per Lemma 5,
the saturation never needs a new element.

Measured: the quotient + saturation pipeline stage; counts of
projection vs freshly derived R-atoms.
"""

from repro.chase import chase, chase_with_embargo, datalog_saturate
from repro.coloring import natural_coloring
from repro.lf import Null
from repro.ptypes import TypePartition, quotient
from repro.skeleton import skeleton
from repro.zoo import example7_database, example7_theory


def _setup():
    theory, database = example7_theory(), example7_database()
    chased = chase(database, theory, max_depth=14)
    skel = skeleton(database, theory, max_depth=14)
    colored = natural_coloring(skel.structure, 3)
    interior = {
        e for e in skel.structure.domain()
        if not isinstance(e, Null) or e.level <= 10
    }
    return theory, chased, colored, interior


def test_example8_saturation(benchmark):
    theory, chased, colored, interior = _setup()

    def run():
        partition = TypePartition(colored.structure, 3, elements=interior)
        quotiented = quotient(colored.structure, 3, partition=partition)
        stripped = quotiented.structure.restrict_signature(colored.base_relations)
        saturated = datalog_saturate(stripped, theory).structure
        return quotiented, saturated

    quotiented, saturated = benchmark(run)
    projected = {
        fact.substitute(quotiented.projection)
        for fact in chased.structure.facts_with_pred("R")
        if all(arg in quotiented.projection for arg in fact.args)
    }
    fresh = saturated.facts_with_pred("R") - projected
    benchmark.extra_info["projected_r_atoms"] = len(projected)
    benchmark.extra_info["fresh_r_atoms"] = len(fresh)
    assert fresh, "Example 8: saturation must derive non-projection atoms"


def test_lemma5_embargo_holds(benchmark):
    theory, _chased, colored, interior = _setup()
    partition = TypePartition(colored.structure, 3, elements=interior)
    quotiented = quotient(colored.structure, 3, partition=partition)
    stripped = quotiented.structure.restrict_signature(colored.base_relations)

    def run():
        return chase_with_embargo(stripped, theory)

    result = benchmark(run)
    benchmark.extra_info["final_facts"] = len(result.structure)
    assert result.saturated
    assert not result.new_elements
