"""Ablation — naive vs semi-naive datalog saturation.

DESIGN.md calls out the evaluation-strategy choice; this benchmark
quantifies it on transitive closure over random graphs: semi-naive
joins only through the delta, naive re-derives everything every round.
The *shape* to expect: the gap widens with the closure's round count.
"""

import pytest

from repro.chase import datalog_saturate, seminaive_saturate
from repro.zoo import chain_structure, random_edges_database, transitive_theory

THEORY = transitive_theory()


@pytest.mark.parametrize("size,edges", [(20, 40), (40, 80)])
def test_naive(benchmark, size, edges):
    database = random_edges_database(size, edges, seed=42)

    def run():
        return datalog_saturate(database, THEORY).structure

    result = benchmark(run)
    benchmark.extra_info["strategy"] = "naive"
    benchmark.extra_info["output_facts"] = len(result)


@pytest.mark.parametrize("size,edges", [(20, 40), (40, 80)])
def test_seminaive(benchmark, size, edges):
    database = random_edges_database(size, edges, seed=42)

    def run():
        return seminaive_saturate(database, THEORY)

    result = benchmark(run)
    benchmark.extra_info["strategy"] = "seminaive"
    benchmark.extra_info["output_facts"] = len(result)


def test_agreement_on_the_bench_inputs():
    """Not a timing: the two strategies agree on every bench input."""
    for size, edges in [(20, 40), (40, 80)]:
        database = random_edges_database(size, edges, seed=42)
        assert datalog_saturate(database, THEORY).structure.same_facts(
            seminaive_saturate(database, THEORY)
        )


@pytest.mark.parametrize("length", [30, 60])
def test_seminaive_long_chain(benchmark, length):
    """Chains maximise the round count — semi-naive's best case."""
    database = chain_structure(length, constants=True)

    def run():
        return seminaive_saturate(database, THEORY)

    result = benchmark(run)
    benchmark.extra_info["closure_facts"] = len(result)
    assert len(result) == length * (length + 1) // 2
