"""E08 — Lemmas 3 & 4: skeleton shape and chase reconstruction.

Skeleton extraction over the zoo theories: the non-constant part is a
forest of bounded degree (Lemma 3), and re-chasing the skeleton rebuilds
the chase using only datalog derivations (Lemma 4).

Measured: extraction and verification times, with the shape stats.
"""

import pytest

from repro.skeleton import lemma3_report, skeleton, verify_lemma4
from repro.vtdag import is_vtdag
from repro.zoo import (
    example1_database,
    example1_theory,
    example7_database,
    example7_theory,
    example9_database,
    example9_theory,
)

CASES = [
    ("example1", example1_theory, example1_database, 6),
    ("example7", example7_theory, example7_database, 6),
    ("example9-tree", example9_theory, example9_database, 4),
]


@pytest.mark.parametrize("name,theory_of,database_of,depth", CASES, ids=[c[0] for c in CASES])
def test_lemma3_shape(benchmark, name, theory_of, database_of, depth):
    theory, database = theory_of(), database_of()

    def run():
        return skeleton(database, theory, max_depth=depth)

    result = benchmark(run)
    report = lemma3_report(result)
    benchmark.extra_info["elements"] = result.structure.domain_size
    benchmark.extra_info["skeleton_atoms"] = len(result.structure)
    benchmark.extra_info["flesh_atoms"] = len(result.flesh)
    benchmark.extra_info["degree_bound"] = report.degree_bound
    benchmark.extra_info["degree_observed"] = report.degree_observed
    assert report.all_hold, report.details
    assert is_vtdag(result.structure)


@pytest.mark.parametrize("name,theory_of,database_of,depth", CASES, ids=[c[0] for c in CASES])
def test_lemma4_rebuild(benchmark, name, theory_of, database_of, depth):
    theory, database = theory_of(), database_of()
    result = skeleton(database, theory, max_depth=depth)

    def run():
        return verify_lemma4(result, theory)

    verdict, reason = benchmark(run)
    assert verdict, reason
