"""E10 — Theorem 2 end-to-end over the corpus.

For every (T, D, Q) in the corpus (binary BDD theory, database, query
not certain), the pipeline produces a verified finite counter-model.
This is the headline reproduction: the paper promises existence, the
benchmark measures construction.

Measured: end-to-end pipeline time per corpus entry, with the
construction constants (κ, η, depth) and structure sizes.
"""

import pytest

from repro.core import build_finite_counter_model, certify_counter_model
from repro.zoo import theorem2_corpus

CORPUS = theorem2_corpus()
IDS = [name for name, *_ in CORPUS]


@pytest.mark.parametrize("name,theory,database,query", CORPUS, ids=IDS)
def test_theorem2_pipeline(benchmark, name, theory, database, query):
    def run():
        return build_finite_counter_model(theory, database, query)

    result = benchmark(run)
    benchmark.extra_info["kappa"] = result.kappa
    benchmark.extra_info["eta"] = result.eta
    benchmark.extra_info["depth"] = result.depth
    benchmark.extra_info["skeleton_size"] = result.skeleton_size
    benchmark.extra_info["interior_size"] = result.interior_size
    benchmark.extra_info["model_size"] = result.model_size
    benchmark.extra_info["retries"] = len(result.attempts)
    assert result.model is not None, result.attempts
    assert certify_counter_model(result, theory, database, query)
