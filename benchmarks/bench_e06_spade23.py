"""E06 — Remark 3: separating (♠2) from (♠3).

On the loop-plus-order structure every Boolean sentence of the quotient
already holds in the source (the loop absorbs them: (♠3) holds), yet
per-element type preservation fails ((♠2) broken): the distinction
Remark 3 insists on.

Measured: both checks on the same quotient.
"""

from repro.coloring import conservativity_report, cyclic_coloring, spade3_holds
from repro.lf import Null, Structure, atom


def loop_and_order():
    n = [Null(i) for i in range(40)]
    facts = [atom("E", n[30], n[30])]
    facts += [atom("E", n[i], n[j]) for i in range(12) for j in range(i + 1, 12)]
    return Structure(facts)


def test_spade3_holds(benchmark):
    colored = cyclic_coloring(loop_and_order(), 3)

    def run():
        return spade3_holds(colored, n=2, m=2)

    verdict, counterexample = benchmark(run)
    benchmark.extra_info["counterexample"] = str(counterexample)
    assert verdict


def test_spade2_fails(benchmark):
    colored = cyclic_coloring(loop_and_order(), 3)

    def run():
        return conservativity_report(colored, n=2, m=2)

    report = benchmark(run)
    benchmark.extra_info["witness_element"] = str(report.witness_element)
    benchmark.extra_info["witness_query"] = str(report.witness_query)
    assert not report.conservative
