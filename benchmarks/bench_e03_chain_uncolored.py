"""E03 — Example 3: quotienting an uncolored chain creates a loop.

``M_n`` of the bare chain identifies all sufficiently generic elements,
producing the reflexive edge that enlarges the 1-type of the merged
class — exactly the type damage Example 3 exhibits.

Measured: quotient time on chains, plus the class-count profile.
"""

import pytest

from repro.lf import Null, Structure, atom
from repro.ptypes import TypePartition, quotient


def chain(length):
    n = [Null(i) for i in range(length + 1)]
    return Structure(atom("E", n[i], n[i + 1]) for i in range(length))


@pytest.mark.parametrize("length", [10, 20, 40])
def test_uncolored_quotient_has_loop(benchmark, length):
    structure = chain(length)

    def run():
        return quotient(structure, 3)

    quotiented = benchmark(run)
    loops = [
        f for f in quotiented.structure.facts_with_pred("E")
        if f.args[0] == f.args[1]
    ]
    benchmark.extra_info["chain_length"] = length
    benchmark.extra_info["quotient_size"] = quotiented.size
    benchmark.extra_info["loops"] = len(loops)
    assert len(loops) == 1
    assert quotiented.size <= 7  # 2(n-1) boundary classes + 1 bulk class


def test_class_profile_by_n(benchmark):
    structure = chain(30)

    def run():
        return [len(TypePartition(structure, n).classes()) for n in (1, 2, 3, 4)]

    profile = benchmark(run)
    benchmark.extra_info["classes_by_n"] = dict(zip((1, 2, 3, 4), profile))
    # 1 class at n=1; 2 new boundary classes per increment after
    assert profile == [1, 3, 5, 7]
