"""E04 — Example 4: the colored chain, in all three regimes.

With m+1 cyclic colors the quotient preserves positive m-types;
one size up (m+1) the projected (m+1)-cycle is visible; and with
n < m the projection is too coarse from the start.

Measured: conservativity-check time per regime.
"""

from repro.coloring import conservativity_report, cyclic_coloring
from repro.lf import Null, Structure, atom


def colored_chain(length, palette):
    n = [Null(i) for i in range(length + 1)]
    structure = Structure(atom("E", n[i], n[i + 1]) for i in range(length))
    return cyclic_coloring(structure, palette)


def test_conservative_up_to_m(benchmark):
    colored = colored_chain(25, 3)

    def run():
        return conservativity_report(colored, n=4, m=2)

    report = benchmark(run)
    benchmark.extra_info["quotient_size"] = report.quotient.size
    assert report.conservative


def test_fails_at_m_plus_one(benchmark):
    colored = colored_chain(25, 3)

    def run():
        return conservativity_report(colored, n=6, m=3)

    report = benchmark(run)
    benchmark.extra_info["witness"] = str(report.witness_query)
    assert not report.conservative
    # the witness is the (m+1)-cycle created by the projection
    assert len([a for a in report.witness_query.atoms if not a.is_equality]) >= 3


def test_fails_when_n_below_m(benchmark):
    colored = colored_chain(25, 3)

    def run():
        return conservativity_report(colored, n=1, m=2)

    report = benchmark(run)
    benchmark.extra_info["witness"] = str(report.witness_query)
    assert not report.conservative
