"""E09 — Example 9 and Lemmas 8/9: cycles in quotients of the tree.

Quotients of the colored binary F/G-tree contain *undirected* cycles
(Example 9 exhibits one of length 4) but no small *directed* cycles
(Lemma 9), and tree-shaped queries are preserved (Lemma 8).

Measured: quotient construction on trees; cycle detection.
"""

from repro.coloring import natural_coloring
from repro.lf import Null, satisfies
from repro.ptypes import TypePartition, quotient, type_queries
from repro.zoo import binary_tree_structure


def _tree_quotient(depth=6, n=2):
    tree = binary_tree_structure(depth)
    colored = natural_coloring(tree, 2)
    partition = TypePartition(colored.structure, n)
    quotiented = quotient(colored.structure, n, partition=partition)
    return tree, colored, quotiented


def _undirected_4cycle(structure, base_preds):
    """Find a,b,c,d with R1(a,c), R2(b,c), R3(b,d), R4(a,d), a≠b, c≠d."""
    for pred1 in base_preds:
        for fact1 in structure.facts_with_pred(pred1):
            a, c = fact1.args
            for pred2 in base_preds:
                for fact2 in structure.facts_with("%s" % pred2, 1, c):
                    b = fact2.args[0]
                    if b == a:
                        continue
                    for pred3 in base_preds:
                        for fact3 in structure.facts_with(pred3, 0, b):
                            d = fact3.args[1]
                            if d == c:
                                continue
                            for pred4 in base_preds:
                                if structure.facts_with(pred4, 0, a) & structure.facts_with(pred4, 1, d):
                                    return (a, b, c, d)
    return None


def _directed_cycle_exists(structure, max_length=4):
    """DFS for a short directed cycle through binary atoms."""
    domain = sorted(structure.domain(), key=str)
    for start in domain:
        stack = [(start, 0)]
        seen_path = [start]

        def walk(node, length):
            if length >= max_length:
                return False
            for successor in structure.successors(node):
                if successor == start and length >= 1:
                    return True
                if successor not in seen_path:
                    seen_path.append(successor)
                    if walk(successor, length + 1):
                        return True
                    seen_path.pop()
            return False

        if walk(start, 0):
            return True
    return False


def test_undirected_cycle_appears(benchmark):
    def run():
        return _tree_quotient(depth=6, n=2)

    tree, colored, quotiented = benchmark(run)
    stripped = quotiented.structure.restrict_signature(["F", "G"])
    found = _undirected_4cycle(stripped, ["F", "G"])
    benchmark.extra_info["tree_size"] = tree.domain_size
    benchmark.extra_info["quotient_size"] = quotiented.size
    benchmark.extra_info["undirected_4cycle"] = str(found)
    assert found is not None, "Example 9 promises an undirected 4-cycle"


def test_no_small_directed_cycle(benchmark):
    tree, colored, quotiented = _tree_quotient(depth=6, n=2)
    stripped = quotiented.structure.restrict_signature(["F", "G"])

    def run():
        return _directed_cycle_exists(stripped, max_length=2)

    found = benchmark(run)
    benchmark.extra_info["directed_cycle_len_le_2"] = found
    # Lemma 9 for m=2, n=2: no directed cycle of length < m is visible
    assert not found


def test_tree_queries_preserved(benchmark):
    """Lemma 8: tree-shaped type queries survive the quotient.

    Checked on the near-root elements, whose finite-truncation types
    agree with the infinite tree (the interior argument of the
    pipeline); deeper frontier elements are exactly the ones a
    truncated quotient may distort.
    """
    tree, colored, quotiented = _tree_quotient(depth=6, n=3)
    root = Null(0)
    near_root = {root} | tree.successors(root)
    for child in list(tree.successors(root)):
        near_root |= tree.successors(child)

    def run():
        checked = 0
        for element in sorted(near_root, key=str):
            image = quotiented.project(element)
            for query in type_queries(quotiented.structure, image, 2,
                                      relation_names=["F", "G"]):
                assert satisfies(
                    colored.structure, query, {query.free[0]: element}
                )
                checked += 1
        return checked

    checked = benchmark(run)
    benchmark.extra_info["queries_checked"] = checked
    assert checked > 0
