"""Chaos smoke: burst-overload a real ``repro serve`` subprocess.

The CI-facing end-to-end resilience check.  It boots ``python -m repro
serve`` as a *subprocess* (real signals, real process RSS — nothing the
in-process test harness can fake), then:

1. fires a paced multi-tenant burst well above the worker pool's
   capacity and checks the overload contract at the wire: every request
   is answered, every response is well-formed (``ok`` bool; sheds carry
   ``error`` + ``retry_after_ms``), at least some of the burst was shed
   (the server was actually overloaded), and the p99 latency of the
   *accepted* requests stays under the SLA — load shedding is the
   mechanism, bounded latency is the point;
2. samples ``/proc/<pid>/status`` VmRSS throughout and checks the peak
   stays under a hard ceiling — bounded queues mean bounded memory, no
   matter how hard the burst pushes;
3. refills the queues and sends SIGTERM mid-overload: the process must
   drain (answer or shed everything it accepted, nothing garbled on
   any connection) and exit ``130`` within the grace window.

Exit code 0 when every check passes, 1 otherwise; the last stdout line
is a one-line JSON summary for the CI log.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

import argparse
import json
import os
import signal
import socket
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.lf.io import atom_to_text, theory_to_text
from repro.serve.client import ServeClient
from repro.zoo import random_edges_database, transitive_theory

SLA_MS = 1000.0
RSS_LIMIT_MB = 512.0
TENANTS = ("alpha", "beta", "gamma")


def well_formed(response):
    """The wire contract: a dict with an ``ok`` bool; failures carry a
    string ``error``; sheds carry an integer ``retry_after_ms``."""
    if not isinstance(response, dict):
        return False
    if not isinstance(response.get("ok"), bool):
        return False
    if response["ok"]:
        return True
    if not isinstance(response.get("error"), str):
        return False
    if response["error"] == "overloaded":
        return isinstance(response.get("retry_after_ms"), int)
    return True


def sample_rss(pid, peak, stop):
    """Poll VmRSS (kB) from /proc until *stop*; track the peak in-place."""
    path = Path(f"/proc/{pid}/status")
    while not stop.is_set():
        try:
            for line in path.read_text().splitlines():
                if line.startswith("VmRSS:"):
                    peak[0] = max(peak[0], float(line.split()[1]) / 1024.0)
                    break
        except OSError:
            return  # process gone
        stop.wait(0.05)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate", type=float, default=150.0,
                        help="burst submission rate, requests/s")
    parser.add_argument("--duration-s", type=float, default=2.0,
                        help="burst window length")
    parser.add_argument("--sla-ms", type=float, default=SLA_MS)
    parser.add_argument("--rss-limit-mb", type=float, default=RSS_LIMIT_MB)
    args = parser.parse_args(argv)

    ttext = theory_to_text(transitive_theory())
    db = random_edges_database(20, 40, seed=42)
    dtext = "\n".join(atom_to_text(f) for f in sorted(db.facts(), key=str))

    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--json",
         "--port", "0", "--workers", "2", "--max-pending", "6",
         "--request-wall-ms", str(args.sla_ms), "--drain-ms", "1000"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env, cwd=str(ROOT),
    )
    failures = []
    summary = {}
    killer = threading.Timer(60.0, proc.kill)
    killer.start()
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready["status"] == "ready" and ready["admission"], ready
        port = ready["port"]

        peak = [0.0]
        stop_rss = threading.Event()
        rss_thread = threading.Thread(
            target=sample_rss, args=(proc.pid, peak, stop_rss), daemon=True)
        rss_thread.start()

        # --- phase 1: the paced 4x-ish burst --------------------------
        clients = [ServeClient(("127.0.0.1", port), timeout=30.0)
                   for _ in TENANTS]
        records = {}
        total = int(args.rate * args.duration_s)
        share = [total // len(clients) + (1 if i < total % len(clients)
                                          else 0)
                 for i in range(len(clients))]

        lock = threading.Lock()

        def read_share(index, client):
            for _ in range(share[index]):
                response = client.recv()
                arrival = time.perf_counter()
                with lock:
                    rec = records.setdefault((index, response["id"]), {})
                    rec["recv"] = arrival
                    rec["response"] = response

        # Pre-submit one request per tenant to warm the sessions.
        for client, tenant in zip(clients, TENANTS):
            assert client.request(
                "chase", tenant=tenant, theory=ttext, database=dtext,
                params={"depth": 4})["ok"]

        readers = []
        begin = time.perf_counter()
        for i in range(total):
            delay = begin + i / args.rate - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            index = i % len(clients)
            submitted = time.perf_counter()
            rid = clients[index].submit(
                "chase", tenant=TENANTS[index], theory=ttext,
                database=dtext, params={"depth": 4})
            with lock:
                records.setdefault((index, rid), {})["submit"] = submitted
            if i == len(clients) - 1:  # all clients now have traffic
                readers = [
                    threading.Thread(target=read_share, args=(j, c),
                                     daemon=True)
                    for j, c in enumerate(clients)
                ]
                for reader in readers:
                    reader.start()
        for reader in readers:
            reader.join(timeout=60)
            if reader.is_alive():
                failures.append("burst reader wedged (responses missing)")

        accepted, shed, malformed = [], 0, 0
        for rec in records.values():
            response = rec.get("response")
            if response is None or not well_formed(response):
                malformed += 1
            elif response["ok"]:
                accepted.append(rec["recv"] - rec["submit"])
            else:
                shed += 1
        p99_ms = None
        if accepted:
            ordered = sorted(accepted)
            p99_ms = round(
                ordered[min(len(ordered) - 1,
                            int(0.99 * len(ordered)))] * 1000.0, 3)
        if malformed:
            failures.append(f"{malformed} malformed/missing responses")
        if not shed:
            failures.append("burst never overloaded the server (0 shed)")
        if not accepted:
            failures.append("burst starved entirely (0 accepted)")
        elif p99_ms >= args.sla_ms:
            failures.append(
                f"accepted p99 {p99_ms}ms breaches the {args.sla_ms}ms SLA")

        # --- phase 2: SIGTERM mid-overload ----------------------------
        drained = []
        for index, client in enumerate(clients):
            for _ in range(4):  # refill the queues
                client.submit("chase", tenant=TENANTS[index], theory=ttext,
                              database=dtext, params={"depth": 4})
        proc.send_signal(signal.SIGTERM)

        def drain_reader(client):
            while True:
                try:
                    drained.append(client.recv())
                except (ConnectionError, OSError, socket.timeout,
                        json.JSONDecodeError):
                    return

        drainers = [threading.Thread(target=drain_reader, args=(c,),
                                     daemon=True) for c in clients]
        for thread in drainers:
            thread.start()
        exit_code = proc.wait(timeout=30)
        for thread in drainers:
            thread.join(timeout=10)
        for client in clients:
            client.close()
        stop_rss.set()
        rss_thread.join(timeout=5)

        bad_drain = [r for r in drained if not well_formed(r)]
        if bad_drain:
            failures.append(
                f"{len(bad_drain)} garbled responses during drain")
        if exit_code != 130:
            failures.append(f"exit code {exit_code}, expected 130 (SIGTERM)")
        if peak[0] > args.rss_limit_mb:
            failures.append(
                f"peak RSS {peak[0]:.1f}MB over the "
                f"{args.rss_limit_mb}MB ceiling")

        summary = {
            "ok": not failures,
            "submitted": len(records),
            "accepted": len(accepted),
            "shed": shed,
            "accepted_p99_ms": p99_ms,
            "sla_ms": args.sla_ms,
            "peak_rss_mb": round(peak[0], 1),
            "drain_responses": len(drained),
            "exit_code": exit_code,
            "failures": failures,
        }
    finally:
        killer.cancel()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    print(json.dumps(summary, sort_keys=True))
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
