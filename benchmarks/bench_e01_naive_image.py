"""E01 — Example 1: the naive homomorphic image vs the real construction.

The chase of ``{E(a,b)}`` under Example 1's theory is a quiet infinite
chain (no U-atom ever); its homomorphic image M′ (a triangle) triggers
the dormant triangle rule and ``Chase(M′, T)`` grows without bound.
The Theorem-2 pipeline instead produces a small *verified* model.

Measured: chase growth from M′ per depth (the divergence series), and
the end-to-end pipeline time and model size.
"""

from repro.chase import ChaseConfig, chase
from repro.core import build_finite_counter_model
from repro.lf import parse_query
from repro.zoo import example1_database, example1_theory, example1_triangle


def test_chain_chase_stays_quiet(benchmark):
    theory, database = example1_theory(), example1_database()

    def run():
        return chase(database, theory, ChaseConfig(max_depth=8))

    result = benchmark(run)
    benchmark.extra_info["u_atoms"] = len(result.structure.facts_with_pred("U"))
    benchmark.extra_info["elements"] = result.structure.domain_size
    assert not result.structure.facts_with_pred("U")


def test_triangle_image_diverges(benchmark):
    theory = example1_theory()
    triangle = example1_triangle()

    def run():
        return chase(triangle, theory, ChaseConfig(max_depth=8))

    result = benchmark(run)
    series = {
        depth: result.truncate(depth).domain_size
        for depth in range(result.depth + 1)
    }
    benchmark.extra_info["elements_by_depth"] = series
    benchmark.extra_info["u_atoms"] = len(result.structure.facts_with_pred("U"))
    # divergence: strictly growing element count, U-atoms appear
    assert series[result.depth] > series[0]
    assert result.structure.facts_with_pred("U")
    assert not result.saturated


def test_pipeline_beats_naive_image(benchmark):
    theory, database = example1_theory(), example1_database()
    query = parse_query("U(x,y)")

    def run():
        return build_finite_counter_model(theory, database, query)

    result = benchmark(run)
    benchmark.extra_info["model_size"] = result.model_size
    benchmark.extra_info["eta"] = result.eta
    benchmark.extra_info["kappa"] = result.kappa
    assert result.model is not None
    assert result.model_size < 40
