"""P05 — pipeline stage costs on Example 7.

A breakdown of the Theorem-2 construction: chase + skeleton, coloring,
partition + quotient, conservativity, and saturation, each timed on the
same inputs so the stage shares are comparable.
"""

from repro.chase import ChaseConfig, chase, chase_with_embargo
from repro.coloring import conservativity_report, natural_coloring
from repro.core.normalize import prepare
from repro.lf import Null, parse_query
from repro.ptypes import TypePartition, quotient
from repro.skeleton import skeleton_of_chase
from repro.zoo import example7_database, example7_theory

DEPTH = 14
CUTOFF = 10
ETA = 3


def _prepared():
    theory, database = example7_theory(), example7_database()
    prepared = prepare(theory, parse_query("R(x,u), P(u,w)"))
    return prepared.theory, database


def _chased(theory, database):
    return chase(database, theory, ChaseConfig(max_depth=DEPTH))


def test_stage_chase_and_skeleton(benchmark):
    theory, database = _prepared()

    def run():
        chased = _chased(theory, database)
        return skeleton_of_chase(chased, database, theory)

    skel = benchmark(run)
    benchmark.extra_info["skeleton_elements"] = skel.structure.domain_size


def test_stage_coloring(benchmark):
    theory, database = _prepared()
    skel = skeleton_of_chase(_chased(theory, database), database, theory)

    def run():
        return natural_coloring(skel.structure, ETA)

    colored = benchmark(run)
    benchmark.extra_info["palette"] = colored.palette_size


def test_stage_quotient(benchmark):
    theory, database = _prepared()
    skel = skeleton_of_chase(_chased(theory, database), database, theory)
    colored = natural_coloring(skel.structure, ETA)
    interior = {
        e for e in skel.structure.domain()
        if not isinstance(e, Null) or e.level <= CUTOFF
    }

    def run():
        partition = TypePartition(colored.structure, ETA, elements=interior)
        return quotient(colored.structure, ETA, partition=partition)

    quotiented = benchmark(run)
    benchmark.extra_info["interior"] = len(interior)
    benchmark.extra_info["quotient_size"] = quotiented.size


def test_stage_conservativity_and_saturation(benchmark):
    theory, database = _prepared()
    skel = skeleton_of_chase(_chased(theory, database), database, theory)
    colored = natural_coloring(skel.structure, ETA)
    interior = {
        e for e in skel.structure.domain()
        if not isinstance(e, Null) or e.level <= CUTOFF
    }
    partition = TypePartition(colored.structure, ETA, elements=interior)
    quotiented = quotient(colored.structure, ETA, partition=partition)

    def run():
        report = conservativity_report(colored, ETA, ETA, prebuilt=quotiented)
        stripped = quotiented.structure.restrict_signature(colored.base_relations)
        saturated = chase_with_embargo(stripped, theory)
        return report, saturated

    report, saturated = benchmark(run)
    benchmark.extra_info["conservative"] = report.conservative
    benchmark.extra_info["model_facts"] = len(saturated.structure)
    assert saturated.saturated
