"""P04 — homomorphism-search scaling: query evaluation on grids.

Path queries of growing length over grids of growing size — the
index-driven backtracking matcher's bread and butter.
"""

import pytest

from repro.lf import Variable, atom, cq, satisfies
from repro.zoo import grid_structure


def path_query(length, pred="H"):
    variables = [Variable(f"v{i}") for i in range(length + 1)]
    return cq([atom(pred, u, v) for u, v in zip(variables, variables[1:])])


@pytest.mark.parametrize("side", [5, 10, 15])
def test_grid_scaling(benchmark, side):
    grid = grid_structure(side, side)
    query = path_query(side - 1)

    def run():
        return satisfies(grid, query)

    verdict = benchmark(run)
    benchmark.extra_info["grid_elements"] = grid.domain_size
    assert verdict


@pytest.mark.parametrize("length", [4, 8, 12])
def test_query_length_scaling(benchmark, length):
    grid = grid_structure(4, 16)
    query = path_query(length)

    def run():
        return satisfies(grid, query)

    verdict = benchmark(run)
    benchmark.extra_info["query_atoms"] = length
    assert verdict


def test_mixed_direction_query(benchmark):
    grid = grid_structure(8, 8)
    x, y, z, w = (Variable(n) for n in "xyzw")
    # an L-shaped join: right, down, right
    query = cq([atom("H", x, y), atom("V", y, z), atom("H", z, w)])

    def run():
        return satisfies(grid, query)

    assert benchmark(run)
