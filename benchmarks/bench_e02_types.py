"""E02 — Example 2: positive 2-types agree, positive 3-types differ.

The chase chain and its triangle image are compared at a mid-chain
element: ``ptp_2`` equal, ``ptp_3`` separated by the 3-cycle query.
Measured: the type-comparison time and the generator counts.
"""

from repro.lf import Null, Structure, atom
from repro.ptypes import type_queries, types_equal


def _structures():
    n = [Null(i) for i in range(20)]
    chain = Structure(atom("E", n[i], n[i + 1]) for i in range(9))
    t = [Null(100), Null(101), Null(102)]
    triangle = Structure(
        [atom("E", t[0], t[1]), atom("E", t[1], t[2]), atom("E", t[2], t[0])]
    )
    return chain, n[4], triangle, t[1]


def test_ptp2_agreement(benchmark):
    chain, chain_element, triangle, triangle_element = _structures()

    def run():
        return types_equal(chain, chain_element, triangle, triangle_element, 2)

    verdict = benchmark(run)
    benchmark.extra_info["generators_chain"] = len(type_queries(chain, chain_element, 2))
    benchmark.extra_info["generators_triangle"] = len(
        type_queries(triangle, triangle_element, 2)
    )
    assert verdict is True


def test_ptp3_separation(benchmark):
    chain, chain_element, triangle, triangle_element = _structures()

    def run():
        return types_equal(chain, chain_element, triangle, triangle_element, 3)

    verdict = benchmark(run)
    # the separating query is the 3-cycle E(y,x1) ∧ E(x1,x2) ∧ E(x2,y)
    cycle_queries = [
        q for q in type_queries(triangle, triangle_element, 3)
        if len([a for a in q.atoms if not a.is_equality]) >= 3
    ]
    benchmark.extra_info["separating_candidates"] = len(cycle_queries)
    assert verdict is False
    assert cycle_queries
