"""Smoke benchmark: reduced-size chase workloads, JSON scoreboard.

A standalone script (no pytest-benchmark needed) that times the
workloads of ``bench_perf_chase`` and ``bench_ablation_seminaive`` at
reduced sizes and writes ``BENCH_chase.json`` next to this file — a
cheap scoreboard a CI step or the next working session can diff.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py          # reduced sizes
    PYTHONPATH=src python benchmarks/run_smoke.py --full   # bench-file sizes

Timings are medians over ``--repeat`` runs; the stats counters
(triggers, probes, facts) are deterministic and the real payload — a
regression shows up there even on a noisy machine.
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chase import ChaseConfig, ChaseStrategy, chase, seminaive_saturate
from repro.zoo import (
    chain_growth_theory,
    chain_structure,
    random_edges_database,
    transitive_theory,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_chase.json"


def timed(fn, repeat):
    """(median wall seconds, last result) over *repeat* runs."""
    samples = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def chase_entry(name, database, theory, config, repeat):
    wall, result = timed(lambda: chase(database, theory, config), repeat)
    stats = result.stats
    return {
        "workload": name,
        "strategy": stats.strategy,
        "wall_s": round(wall, 6),
        "depth": result.depth,
        "facts": len(result.structure),
        "triggers_evaluated": stats.triggers_evaluated,
        "triggers_fired": stats.triggers_fired,
        "triggers_suppressed": stats.triggers_suppressed,
        "index_probes": stats.index_probes,
        "rounds": len(stats.rounds),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="run at the bench-file sizes instead of reduced")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (median is reported)")
    parser.add_argument("--output", type=Path, default=OUTPUT)
    args = parser.parse_args(argv)

    depth = 40 if args.full else 20
    tc_size, tc_edges = (40, 80) if args.full else (15, 30)
    chain_len = 60 if args.full else 25

    growth_theory = chain_growth_theory(3)
    growth_db = random_edges_database(4, 6, predicates=("P0",), seed=7)
    tc_theory = transitive_theory()
    tc_db = random_edges_database(tc_size, tc_edges, seed=42)

    entries = []
    speedups = {}

    # bench_perf_chase: deep existential recursive chain, both strategies
    per_strategy = {}
    for strategy in (ChaseStrategy.NAIVE, ChaseStrategy.DELTA):
        entry = chase_entry(
            f"recursive-chain-d{depth}", growth_db, growth_theory,
            ChaseConfig(max_depth=depth, strategy=strategy), args.repeat,
        )
        per_strategy[strategy.value] = entry
        entries.append(entry)
    speedups["recursive_chain"] = round(
        per_strategy["naive"]["wall_s"] / max(per_strategy["delta"]["wall_s"], 1e-9), 2
    )

    # bench_perf_chase: transitive closure (datalog, saturating)
    for strategy in (ChaseStrategy.NAIVE, ChaseStrategy.DELTA):
        entries.append(chase_entry(
            f"transitive-closure-{tc_size}n{tc_edges}e", tc_db, tc_theory,
            ChaseConfig(max_depth=None, max_facts=500_000, strategy=strategy),
            args.repeat,
        ))

    # bench_ablation_seminaive: the dedicated datalog fast path on chains
    chain_db = chain_structure(chain_len, constants=True)
    wall, closure = timed(
        lambda: seminaive_saturate(chain_db, tc_theory), args.repeat
    )
    expected = chain_len * (chain_len + 1) // 2
    assert len(closure) == expected, (len(closure), expected)
    entries.append({
        "workload": f"seminaive-chain-{chain_len}",
        "strategy": "seminaive_saturate",
        "wall_s": round(wall, 6),
        "facts": len(closure),
    })

    payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "entries": entries,
        "speedups": speedups,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for entry in entries:
        print(f"{entry['workload']:>34} {entry['strategy']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  {entry['facts']} facts")
    print(f"naive/delta speedup on the recursive chain: "
          f"{speedups['recursive_chain']}x")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
