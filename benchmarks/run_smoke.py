"""Smoke benchmark: reduced-size chase workloads, JSON scoreboard.

A standalone script (no pytest-benchmark needed) that times the
workloads of ``bench_perf_chase`` and ``bench_ablation_seminaive`` at
reduced sizes and writes ``BENCH_chase.json`` next to this file — a
cheap scoreboard a CI step or the next working session can diff.

It also writes ``BENCH_fc.json``: the finite-model-search scoreboard
(``bench_perf_fc``) — the delta engine (copy-on-write states,
incremental saturation, canonical dedup) against :func:`legacy_search`
on the Section 5.5 workloads and the Theorem-2 counter-model corpus.
Node counts and verdicts are deterministic; each entry reports them
next to the wall time, and the speedup block includes the node
throughput ratio the acceptance bar is stated in.

It also writes ``BENCH_hom.json``: microbenchmarks of the compiled
join-plan evaluation path (:mod:`repro.lf.plan`) against the legacy
backtracking matcher, on the workloads the planner was built for — the
rewriting engine's UCQ minimisation and ptype-style per-element
probes.  Each workload runs in a *planned* and a *legacy* mode (the
latter via :func:`repro.lf.planner_disabled` /
:func:`repro.rewriting.subsume_cache_disabled`) and reports the
speedup; the parity of the two paths is enforced by the property suite
(``tests/property/test_plan_parity.py``), so the modes are comparable
by construction.

It also writes ``BENCH_rewrite.json``: the UCQ-rewriting scoreboard
(``bench_perf_rewriting``) — the indexed worklist engine against
:func:`~repro.rewriting.legacy_rewrite` on the Theorem-2 corpus
(``theorem2_corpus(extended=True)``, which opts into the heavy
``linear-mix/P5-cycle-stress`` entry) and the deepest zoo growth
chain.  Both engines run under the same budget with the subsumption
cache cleared in between; outputs are checked UCQ-equivalent whenever
both saturate, so the candidate-throughput ratio (the acceptance bar:
>= 3x on the corpus stage) compares identical semantic work.

It also writes ``BENCH_guard.json``: the runtime-guard overhead
ablation.  Each workload (the recursive-chain chase and the Section
5.5 exhaustive search) runs once with an *active* guard — huge,
never-tripping ``wall_ms``/``max_rss_mb`` budgets, so every checkpoint
pays the real deadline/RSS bookkeeping — and once with
``guards_disabled=True`` (the shared NULL_GUARD).  The acceptance bar
is a median overhead of at most 2% (``bar_pct`` in the payload);
results must be identical between the modes.

It also writes ``BENCH_store.json``: the fact-store backend scoreboard
— the interned columnar backend (:mod:`repro.store`) against the dict
backend on store-level workloads: bulk loading, join-plan scans, the
copy-then-mutate branching pattern of fc-search, and the
restriction-heavy flows of ptype computations.  Results are asserted
equal across backends per workload; the acceptance bar (``bar_x``) is
a >= 2x columnar speedup on the structural workloads (branching and
restriction), where COW copies and shared relations beat the dict
backend's per-fact index rebuilds.

It also writes ``BENCH_resil.json``: the overload-resilience
scoreboard.  Three tenant connections fire a paced 4x-capacity burst
of chase requests at a ``repro serve`` instance for a fixed window,
once with the admission controller (bounded queues, load shedding,
queue deadlines) and once unprotected (``admission_disabled=True``,
the bare executor queue).  The metric is *goodput* — requests answered
OK within ``SERVE_SLA_MS`` of submission — plus the accepted p99 and
the shed-latency p99; the acceptance bar (``bar_x``) is a >= 2x
goodput advantage for the admission mode under the identical burst,
with its accepted p99 under the SLA.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py          # reduced sizes
    PYTHONPATH=src python benchmarks/run_smoke.py --full   # bench-file sizes

Timings are medians over ``--repeat`` runs; the stats counters
(triggers, probes, facts) are deterministic and the real payload — a
regression shows up there even on a noisy machine.
"""

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chase import (
    ChaseConfig,
    ChaseStrategy,
    ChaseView,
    IncrementalConfig,
    chase,
    chase_entails,
    seminaive_saturate,
)
from repro.fc import SearchConfig, legacy_search, search_finite_model
from repro.lf import (
    HOM_STATS,
    Atom,
    Constant,
    ConjunctiveQuery,
    Variable,
    Structure,
    atom,
    clear_plan_cache,
    homomorphisms,
    legacy_homomorphisms,
    parse_query,
    planner_disabled,
    satisfies,
)
from repro.config import OnBudget
from repro.store import ColumnarStructure
from repro.rewriting import (
    RewriteConfig,
    clear_subsume_cache,
    legacy_rewrite,
    minimize_ucq,
    rewrite,
    subsume_cache_disabled,
    ucq_equivalent,
)
from repro.zoo import (
    chain_growth_theory,
    chain_structure,
    churn_stream,
    disjoint_chains_database,
    random_edges_database,
    section55_database,
    section55_query,
    section55_theory,
    theorem2_corpus,
    transitive_theory,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_chase.json"
HOM_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_hom.json"
FC_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fc.json"
REWRITE_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_rewrite.json"
GUARD_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_guard.json"
STORE_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_store.json"
INCR_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_incr.json"

#: BENCH_store acceptance bar: columnar must be at least this much
#: faster than dict on the structural workloads (branch, restrict).
STORE_SPEEDUP_BAR_X = 2.0

#: BENCH_incr acceptance bar: incremental view maintenance must beat
#: per-batch full rechase by at least this much on the small-delta
#: streaming workload (``tc-stream``), on both store backends.
INCR_SPEEDUP_BAR_X = 3.0

SERVE_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: BENCH_serve acceptance bar: a warm ``repro serve`` session must
#: answer the Theorem-2 corpus request mix at least this much faster
#: than the cold per-request baseline (fresh tenant + cleared process
#: caches on every request).
SERVE_SPEEDUP_BAR_X = 3.0

#: BENCH_serve per-request SLA: the server's default ``wall_ms`` for
#: the run; the warm mix's p99 latency must come in under it.
SERVE_SLA_MS = 1000.0

#: Never-tripping guard budgets: the guard is active (every checkpoint
#: pays the deadline check and the periodic RSS poll) but cannot stop
#: the run, so the guarded/unguarded gap is pure bookkeeping overhead.
GUARD_ON = {"wall_ms": 3_600_000.0, "max_rss_mb": 1_000_000.0}
GUARD_OVERHEAD_BAR_PCT = 2.0

RESIL_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_resil.json"

#: BENCH_resil acceptance bar: under the same sustained 4x-capacity
#: multi-tenant burst, the admission-controlled server's goodput
#: (requests answered OK *within the SLA*) must be at least this much
#: higher than the unprotected (unbounded executor queue) server's.
RESIL_GOODPUT_BAR_X = 2.0


def timed(fn, repeat):
    """(median wall seconds, last result) over *repeat* runs."""
    samples = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def chase_entry(name, database, theory, config, repeat):
    wall, result = timed(lambda: chase(database, theory, config), repeat)
    stats = result.stats
    return {
        "workload": name,
        "strategy": stats.strategy,
        "wall_s": round(wall, 6),
        "depth": result.depth,
        "facts": len(result.structure),
        "triggers_evaluated": stats.triggers_evaluated,
        "triggers_fired": stats.triggers_fired,
        "triggers_suppressed": stats.triggers_suppressed,
        "index_probes": stats.index_probes,
        "rounds": len(stats.rounds),
    }


def _path_query(k):
    vs = [Variable(f"v{i}") for i in range(k + 1)]
    return ConjunctiveQuery(
        [atom("E", vs[i], vs[i + 1]) for i in range(k)], (vs[0], vs[-1])
    )


def _probe_query(k, reach=True):
    """A one-free-variable query, ptype-style: reachability down a
    k-path, or membership in a k-cycle."""
    f = Variable("f")
    if reach:
        vs = [f] + [Variable(f"r{i}") for i in range(1, k + 1)]
        return ConjunctiveQuery(
            [atom("E", vs[i], vs[i + 1]) for i in range(k)], (f,)
        )
    vs = [f] + [Variable(f"c{i}") for i in range(1, k)]
    return ConjunctiveQuery(
        [atom("E", vs[i], vs[(i + 1) % k]) for i in range(k)], (f,)
    )


def _marked_chain(k):
    """E-chains with U/V endpoint markers: pairwise incomparable, so
    ``minimize_ucq`` really performs all O(n²) containment checks."""
    vs = [Variable(f"v{i}") for i in range(k + 1)]
    atoms = [atom("E", vs[i], vs[i + 1]) for i in range(k)]
    atoms += [atom("U", vs[0]), atom("V", vs[k])]
    return ConjunctiveQuery(atoms, (vs[0],))


def hom_entries(full, repeat):
    """The BENCH_hom microbenchmarks: (entries, speedups)."""
    entries = []
    speedups = {}

    def contrast(workload, planned_fn, legacy_fn, extra=None):
        """Time both modes; returns the legacy/planned speedup."""
        clear_plan_cache()
        clear_subsume_cache()
        before = HOM_STATS.snapshot()
        planned_wall, planned_result = timed(planned_fn, repeat)
        hom = HOM_STATS.since(before)
        legacy_wall, legacy_result = timed(legacy_fn, repeat)
        assert planned_result == legacy_result, (
            workload, planned_result, legacy_result)
        speedup = round(legacy_wall / max(planned_wall, 1e-9), 2)
        base = dict(extra or {})
        entries.append({**base, "workload": workload, "mode": "planned",
                        "wall_s": round(planned_wall, 6),
                        "result": planned_result,
                        "hom": hom.as_dict()})
        entries.append({**base, "workload": workload, "mode": "legacy",
                        "wall_s": round(legacy_wall, 6),
                        "result": legacy_result})
        return speedup

    # hom-engine, enumeration: path joins, full binding enumeration —
    # the shape of the rewriting engine's containment checks
    nodes, edges, lengths = (60, 180, (6, 8)) if full else (40, 140, (5, 6))
    db = random_edges_database(nodes, edges, seed=11)
    queries = [_path_query(k) for k in lengths]

    def enumerate_with(engine):
        def run():
            matches = 0
            for query in queries:
                for _ in engine(query.atoms, db):
                    matches += 1
            return matches
        return run

    speedups["path_join"] = contrast(
        f"path-join-{nodes}n{edges}e",
        enumerate_with(homomorphisms),
        enumerate_with(legacy_homomorphisms),
        {"paths": list(lengths)},
    )

    # hom-engine, existence probes: satisfies() once per element per
    # query with the free variable prebound — the ptype workload
    p_nodes, p_edges, cycles = (120, 400, (6, 8)) if full else (100, 300, (6, 7))
    probe_db = random_edges_database(p_nodes, p_edges, seed=11)
    probe_queries = [_probe_query(6), _probe_query(8)] + [
        _probe_query(k, reach=False) for k in cycles
    ]
    probe_elements = sorted(probe_db.domain(), key=str)

    def probe_all():
        satisfied = 0
        for query in probe_queries:
            free = query.free[0]
            for element in probe_elements:
                if satisfies(probe_db, query, {free: element}):
                    satisfied += 1
        return satisfied

    def probe_legacy():
        with planner_disabled():
            return probe_all()

    speedups["ptype_probe"] = contrast(
        f"ptype-probe-{p_nodes}n{p_edges}e", probe_all, probe_legacy,
        {"cycles": list(cycles)},
    )

    # minimize_ucq: n pairwise-incomparable disjuncts, so every pair is
    # containment-checked — planned matcher + normalize/freeze caching
    # against the uncached legacy path
    n_disjuncts = 32 if full else 20
    disjuncts = [_marked_chain(k) for k in range(1, n_disjuncts + 1)]

    def minimize_planned():
        clear_subsume_cache()
        return len(minimize_ucq(disjuncts))

    def minimize_legacy():
        with subsume_cache_disabled(), planner_disabled():
            return len(minimize_ucq(disjuncts))

    speedups["minimize_ucq"] = contrast(
        f"minimize-ucq-{n_disjuncts}chains", minimize_planned, minimize_legacy,
        {"disjuncts": n_disjuncts},
    )

    return entries, speedups


def fc_entries(full, repeat):
    """The BENCH_fc scoreboard: (entries, speedups).

    Each workload runs under the delta engine and ``legacy_search``;
    verdicts and node counts must agree (the parity suite fuzzes the
    same contract), so the wall and node-throughput ratios compare the
    engines on identical search work.
    """
    entries = []
    speedups = {}

    def engines(database, theory, forbidden, max_elements):
        delta = lambda: search_finite_model(
            database, theory, forbidden=forbidden,
            config=SearchConfig(max_elements=max_elements),
        )
        legacy = lambda: legacy_search(
            database, theory, forbidden=forbidden, max_elements=max_elements,
        )
        return delta, legacy

    def contrast(workload, key, database, theory, forbidden, max_elements):
        delta_fn, legacy_fn = engines(database, theory, forbidden, max_elements)
        per_engine = {}
        for mode, fn in (("delta", delta_fn), ("legacy", legacy_fn)):
            wall, outcome = timed(fn, repeat)
            stats = outcome.stats
            per_engine[mode] = (wall, outcome)
            entries.append({
                "workload": workload,
                "engine": mode,
                "wall_s": round(wall, 6),
                "found": outcome.found,
                "model_size": outcome.model.domain_size if outcome.found else 0,
                "nodes_per_s": round(stats.nodes / max(wall, 1e-9), 1),
                "stats": stats.as_dict(timings=False),
            })
        (delta_wall, delta_out), (legacy_wall, legacy_out) = (
            per_engine["delta"], per_engine["legacy"])
        assert delta_out.found == legacy_out.found, workload
        speedups[key] = {
            "wall": round(legacy_wall / max(delta_wall, 1e-9), 2),
            "nodes_per_s": round(
                (delta_out.stats.nodes / max(delta_wall, 1e-9))
                / max(legacy_out.stats.nodes / max(legacy_wall, 1e-9), 1e-9),
                2,
            ),
        }

    theory = section55_theory()

    # Section 5.5 exhaustive: every finite model within the bound
    # satisfies the query, so both engines sweep the same node set.
    me = 12 if full else 10
    contrast(f"s55-exhaustive-me{me}", "s55_exhaustive",
             section55_database(), theory, section55_query(), me)

    # Section 5.5 model search: a wide frontier of chain-end branches
    # the DFS never pops — the acceptance workload (>= 3x nodes/s).
    chains = 12 if full else 10
    contrast(f"s55-model-search-{chains}chains", "s55_model_search",
             disjoint_chains_database(chains), theory, None,
             44 if full else 40)

    # Theorem 2: counter-model search on a corpus entry whose theory
    # forks (two chains merge only in the forbidden query).
    for name, t2_theory, t2_db, t2_query in theorem2_corpus():
        if name == "two-chains/merge-query":
            contrast("theorem2-two-chains", "theorem2",
                     t2_db, t2_theory, t2_query, 7)

    return entries, speedups


def rewrite_entries(full, repeat):
    """The BENCH_rewrite scoreboard: (entries, speedups).

    Every workload runs under the indexed engine and ``legacy_rewrite``
    with the same budget; wherever both saturate the outputs are
    asserted UCQ-equivalent, so the throughput ratios compare engines
    doing the same semantic work.  The stage ratio is aggregate
    candidate throughput (total candidates / total wall), which is what
    the acceptance bar (>= 3x on the Theorem-2 corpus stage) binds.
    """
    entries = []
    speedups = {}

    config = RewriteConfig(
        max_steps=200_000 if full else 100_000,
        max_queries=4_000 if full else 2_000,
        on_budget=OnBudget.RETURN,
    )

    def contrast(stage, workloads):
        """Run each (name, theory, query) under both engines; return
        the stage-aggregate candidate-throughput ratio."""
        totals = {"indexed": [0, 0.0], "legacy": [0, 0.0]}
        for name, theory, query in workloads:
            results = {}
            for mode, engine in (("indexed", rewrite), ("legacy", legacy_rewrite)):
                clear_subsume_cache()
                wall, result = timed(lambda: engine(query, theory, config), repeat)
                results[mode] = result
                totals[mode][0] += result.stats.candidates
                totals[mode][1] += wall
                entries.append({
                    "stage": stage,
                    "workload": name,
                    "engine": mode,
                    "wall_s": round(wall, 6),
                    "saturated": result.saturated,
                    "disjuncts": len(result.ucq),
                    "candidates": result.stats.candidates,
                    "candidates_per_s": round(
                        result.stats.candidates / max(wall, 1e-9), 1),
                    "stats": result.stats.as_dict(timings=False),
                })
            if results["indexed"].saturated and results["legacy"].saturated:
                assert ucq_equivalent(
                    results["indexed"].ucq, results["legacy"].ucq), name
        indexed_rate = totals["indexed"][0] / max(totals["indexed"][1], 1e-9)
        legacy_rate = totals["legacy"][0] / max(totals["legacy"][1], 1e-9)
        speedups[stage] = {
            "wall": round(totals["legacy"][1] / max(totals["indexed"][1], 1e-9), 2),
            "candidates_per_s": round(indexed_rate / max(legacy_rate, 1e-9), 2),
        }

    # Theorem-2 corpus, including the rewriting stress entry the
    # extended corpus opts into — the acceptance workload.
    contrast("theorem2-corpus", [
        (name, theory, query)
        for name, theory, _db, query in theorem2_corpus(extended=True)
    ])

    # The deepest zoo growth chain: an 8-predicate ladder with a
    # multi-predicate path query.  Small closure (the per-step overhead
    # bound), kept as the honest low end of the scoreboard.
    depth = 8
    ladder = chain_growth_theory(depth)
    vs = [Variable(f"v{i}") for i in range(5)]
    path = ConjunctiveQuery(
        [atom(f"P{i % depth}", vs[i], vs[i + 1]) for i in range(4)], (vs[0],)
    )
    contrast("zoo-chain", [(f"chain-growth-p{depth}-path4", ladder, path)])

    return entries, speedups


def guard_entries(full, repeat):
    """The BENCH_guard ablation: (entries, overheads).

    Each workload runs guarded (active guard, never-tripping budgets)
    and unguarded (``guards_disabled=True``); the overhead percentage
    is the guarded/unguarded wall ratio minus one.  Work counters must
    be identical — the guard may cost time, never change results.
    """
    entries = []
    overheads = {}

    def contrast(workload, key, run, checksum):
        per_mode = {}
        for mode, overrides in (
            ("guarded", GUARD_ON),
            ("unguarded", {"guards_disabled": True}),
        ):
            wall, result = timed(lambda: run(**overrides), repeat)
            per_mode[mode] = (wall, checksum(result))
            entries.append({
                "workload": workload,
                "mode": mode,
                "wall_s": round(wall, 6),
                "checksum": checksum(result),
            })
        (guarded_wall, guarded_sum), (plain_wall, plain_sum) = (
            per_mode["guarded"], per_mode["unguarded"])
        assert guarded_sum == plain_sum, (workload, guarded_sum, plain_sum)
        overheads[key] = round(
            (guarded_wall / max(plain_wall, 1e-9) - 1.0) * 100.0, 2)

    # The recursive-chain chase of BENCH_chase: checkpoints per round,
    # per rule, and per 1024-trigger batch.
    depth = 40 if full else 20
    growth_theory = chain_growth_theory(3)
    growth_db = random_edges_database(4, 6, predicates=("P0",), seed=7)
    contrast(
        f"chase-recursive-chain-d{depth}", "chase",
        lambda **overrides: chase(
            growth_db, growth_theory,
            ChaseConfig(max_depth=depth, **overrides),
        ),
        lambda result: (result.depth, len(result.structure)),
    )

    # The Section 5.5 exhaustive search of BENCH_fc: one checkpoint per
    # node expansion.
    me = 12 if full else 10
    contrast(
        f"fc-s55-exhaustive-me{me}", "fc_search",
        lambda **overrides: search_finite_model(
            section55_database(), section55_theory(),
            forbidden=section55_query(),
            config=SearchConfig(max_elements=me, **overrides),
        ),
        lambda result: (result.found, result.stats.nodes),
    )

    return entries, overheads


def _store_database(nodes, edges):
    """A multi-predicate database: E edges plus U/V unaries and T triples.

    Mixed predicates and arities, so the branching workload's COW copy
    has untouched relations to share and the index carries buckets of
    every shape."""
    db = random_edges_database(nodes, edges, seed=3)
    for i in range(nodes):
        db.add_fact(Atom("U", (Constant(f"v{i}"),)))
        db.add_fact(Atom("V", (Constant(f"v{(i * 7) % nodes}"),)))
    for i in range(edges):
        db.add_fact(Atom("T", (
            Constant(f"v{i % nodes}"),
            Constant(f"v{(i * 3) % nodes}"),
            Constant(f"v{(i * 11) % nodes}"),
        )))
    return db


def store_entries(full, repeat):
    """The BENCH_store backend scoreboard: (entries, speedups).

    Each workload runs identically on the dict backend and on the
    interned columnar backend (same facts, same operations, results
    asserted equal), and the speedup block reports dict/columnar wall
    ratios.  The structural workloads — ``branch`` (the copy-then-
    mutate pattern of every fc-search node) and ``restrict`` (the
    signature/element restrictions of ptype-style flows) — carry the
    acceptance bar: the columnar backend's COW copies and shared
    relations make them cheaper than the dict backend's per-fact index
    rebuilds, not just faster by a constant."""
    nodes, edges, branches, restrictions = (
        (80, 560, 400, 200) if full else (60, 400, 200, 100))
    base = _store_database(nodes, edges)
    columnar = ColumnarStructure.from_structure(base)
    assert columnar == base
    entries = []
    speedups = {}
    scan_query = parse_query(
        "E(x,y), E(y,z), E(z,w)", free=["x", "w"])
    probe_query = parse_query("E(x,y), U(y), V(x)")
    fact_list = base.sorted_facts()

    def bulk_load(make):
        def run():
            return len(make(fact_list))
        return run

    def scan(structure):
        def run():
            return sum(1 for _ in homomorphisms(scan_query.atoms, structure))
        return run

    def branch(structure):
        def run():
            satisfied = 0
            for i in range(branches):
                child = structure.copy()
                child.add_fact(Atom("U", (Constant(f"fresh{i}"),)))
                if satisfies(child, probe_query):
                    satisfied += 1
            return satisfied
        return run

    def restrict(structure):
        some = sorted(structure.domain(), key=str)[: nodes // 2]
        def run():
            kept = 0
            for _ in range(restrictions):
                kept += len(structure.restrict_signature(["E", "U"]))
                kept += len(structure.restrict_elements(some))
            return kept
        return run

    workloads = [
        ("bulk-load", bulk_load(Structure), bulk_load(ColumnarStructure)),
        ("scan-join", scan(base), scan(columnar)),
        ("branch", branch(base), branch(columnar)),
        ("restrict", restrict(base), restrict(columnar)),
    ]
    for name, on_dict, on_columnar in workloads:
        clear_plan_cache()
        dict_wall, dict_result = timed(on_dict, repeat)
        clear_plan_cache()
        columnar_wall, columnar_result = timed(on_columnar, repeat)
        assert dict_result == columnar_result, (
            name, dict_result, columnar_result)
        for backend, wall in (("dict", dict_wall), ("columnar", columnar_wall)):
            entries.append({
                "workload": name,
                "backend": backend,
                "wall_s": round(wall, 6),
                "result": dict_result,
                "facts": len(base),
            })
        speedups[name] = round(dict_wall / max(columnar_wall, 1e-9), 2)
    return entries, speedups


def _evolved_bases(database, stream):
    """The base-fact snapshots after each batch of *stream* — what the
    rechase side chases from scratch, batch by batch."""
    live = set(database.facts())
    bases = []
    for adds, removes in stream:
        live.difference_update(removes)
        live.update(adds)
        bases.append(sorted(live, key=str))
    return bases


def incr_entries(full, repeat):
    """The BENCH_incr scoreboard: (entries, speedups).

    Each streaming workload runs twice: *incremental* builds one
    :class:`ChaseView` and applies every update batch (semi-naive delta
    resume on inserts, DRed overdelete/rederive on deletes), *rechase*
    chases every post-batch base from scratch.  Both sides see the same
    deterministic :func:`churn_stream`, so the comparison is exact:

    * ``tc-stream`` — transitive closure (datalog, saturating), the
      acceptance workload, run on both store backends.  Final fact sets
      are asserted equal (datalog has no nulls, so homomorphic
      equivalence is plain set equality); the bar (``bar_x``) binds the
      dict and columnar speedups.
    * ``theorem2-stream`` — the Theorem-2 corpus *theories* on
      saturating cycle-core databases.  The corpus databases themselves
      all have divergent chases (there is no fixpoint to maintain), but
      under the restricted chase each theory saturates on a successor
      cycle: every node keeps an outgoing edge, so the growth
      existentials stay suppressed while the datalog rules (example7's
      E-confluence ``R``, two-chains' ``B`` marker) derive real facts
      the churn moves around.  The cycle core is protected from churn
      (``churn_stream(protected=...)``); chords churn freely.  No
      existential ever fires, so the view and the fresh rechase agree
      on the exact fact set and on the corpus query's verdict —
      asserted per entry.  The ≥5x small-delta target is read here.
    * ``batch-load`` — one huge insert batch, the workload incremental
      maintenance does *not* win (the resume does the same work as a
      fresh chase plus trace bookkeeping).  Reported honestly outside
      the bar as the scoreboard's low end.
    """
    entries = []
    speedups = {}
    theory = transitive_theory()

    def contrast(workload, key, backend, run_incremental, run_rechase,
                 batches, check):
        incr_wall, view = timed(run_incremental, repeat)
        full_wall, last = timed(run_rechase, repeat)
        check(view, last)
        updates = view.update_stats[-batches:]
        entries.append({
            "workload": workload,
            "mode": "incremental",
            "backend": backend,
            "wall_s": round(incr_wall, 6),
            "facts": len(view),
            "updates": batches,
            "overdeleted": sum(u.overdeleted for u in updates),
            "rederived": sum(u.rederived for u in updates),
            "resumed_rounds": sum(u.resumed_rounds for u in updates),
            "saturated": view.saturated,
        })
        entries.append({
            "workload": workload,
            "mode": "rechase",
            "backend": backend,
            "wall_s": round(full_wall, 6),
            "facts": len(last.structure),
            "updates": batches,
            "saturated": last.saturated,
        })
        speedups[key] = round(full_wall / max(incr_wall, 1e-9), 2)

    # tc-stream: small-delta churn over a random edge base, both
    # backends — the acceptance workload.
    nodes, edges, batches = (40, 90, 16) if full else (25, 55, 12)
    tc_db = random_edges_database(nodes, edges, seed=42)
    stream = churn_stream(tc_db, batches=batches, delta_size=1,
                          churn=0.5, seed=42)
    bases = _evolved_bases(tc_db, stream)
    for backend in ("dict", "columnar"):
        def tc_incremental(backend=backend):
            view = ChaseView(tc_db, theory, IncrementalConfig(
                max_depth=None, max_facts=500_000, store=backend))
            for adds, removes in stream:
                view.update(adds=adds, removes=removes)
            return view

        def tc_rechase(backend=backend):
            result = None
            for base in bases:
                result = chase(Structure(base), theory, ChaseConfig(
                    max_depth=None, max_facts=500_000, store=backend))
            return result

        def tc_check(view, last):
            assert view.saturated and last.saturated
            assert view.facts() == last.structure.facts()

        contrast(f"tc-stream-{nodes}n{edges}e-b{batches}",
                 f"tc_stream_{backend}", backend,
                 tc_incremental, tc_rechase, batches, tc_check)

    # theorem2-stream: corpus theories on saturating cycle cores.
    cycle_n = 36 if full else 24
    t2_batches = 16 if full else 12
    safety = dict(max_depth=None, max_facts=100_000)

    def cycle_core(pred):
        vs = [Constant(f"v{i}") for i in range(cycle_n)]
        return [atom(pred, vs[i], vs[(i + 1) % cycle_n])
                for i in range(cycle_n)]

    def chords(pred):
        # forward skip-2 chords: with the skip-1 core and cycle_n >= 7
        # no directed 3-cycle exists, so example1's triangle rule
        # (whose U-consequences diverge) can never fire from the seed
        vs = [Constant(f"v{i}") for i in range(cycle_n)]
        return [atom(pred, vs[i], vs[(i + 2) % cycle_n])
                for i in range(0, cycle_n, 3)]

    for name, t2_theory, _t2_db, t2_query in theorem2_corpus():
        if name == "binary-tree/F-G-join":
            core = cycle_core("F") + cycle_core("G")
            pred = "F"
        else:
            core = cycle_core("E")
            pred = "E"
        t2_db = Structure(core + chords(pred))
        t2_stream = churn_stream(t2_db, batches=t2_batches, delta_size=1,
                                 churn=0.5, pred=pred, seed=7,
                                 protected=core)
        if name == "example1/triangle-query":
            # drop adds that would close a directed closed 3-walk —
            # including self-loops, which satisfy the triangle body
            # with x=y=z: the triangle rule's U-consequences diverge,
            # and this stream maintains a fixpoint (deterministic,
            # documented filter)
            live = {(f.args[0], f.args[1]) for f in t2_db.facts()}
            succ = {}
            for u, v in live:
                succ.setdefault(u, set()).add(v)
            filtered = []
            for adds, removes in t2_stream:
                for f in removes:
                    live.discard((f.args[0], f.args[1]))
                    succ.get(f.args[0], set()).discard(f.args[1])
                kept = []
                for f in adds:
                    u, v = f.args
                    closes = u == v or any(
                        (w, u) in live for w in succ.get(v, ()))
                    if closes:
                        continue
                    kept.append(f)
                    live.add((u, v))
                    succ.setdefault(u, set()).add(v)
                filtered.append((kept, removes))
            t2_stream = filtered
        t2_bases = _evolved_bases(t2_db, t2_stream)

        def t2_incremental(t2_db=t2_db, t2_theory=t2_theory,
                           t2_stream=t2_stream):
            view = ChaseView(t2_db, t2_theory, IncrementalConfig(**safety))
            for adds, removes in t2_stream:
                view.update(adds=adds, removes=removes)
            return view

        def t2_rechase(t2_theory=t2_theory, t2_bases=t2_bases):
            result = None
            for base in t2_bases:
                result = chase(Structure(base), t2_theory,
                               ChaseConfig(**safety))
            return result

        def t2_check(view, last, t2_query=t2_query, name=name):
            assert view.saturated and last.saturated, name
            assert view.facts() == last.structure.facts(), name
            ours = view.certain_one(t2_query).verdict
            theirs = chase_entails(last, t2_query)
            assert ours == theirs, (name, ours, theirs)

        short = name.split("/")[0]
        contrast(f"theorem2-stream-{short}", f"theorem2_{short}", "dict",
                 t2_incremental, t2_rechase, t2_batches, t2_check)

    # the ≥5x small-delta target is read on the corpus aggregate
    t2_incr = sum(e["wall_s"] for e in entries
                  if e["workload"].startswith("theorem2-stream-")
                  and e["mode"] == "incremental")
    t2_full = sum(e["wall_s"] for e in entries
                  if e["workload"].startswith("theorem2-stream-")
                  and e["mode"] == "rechase")
    speedups["theorem2_stream"] = round(t2_full / max(t2_incr, 1e-9), 2)

    # batch-load: one big insert batch — the honest low end.
    load_facts = sorted(tc_db.facts(), key=str)
    half = len(load_facts) // 2
    start, bulk = load_facts[:half], load_facts[half:]

    def load_incremental():
        view = ChaseView(Structure(start), theory, IncrementalConfig(
            max_depth=None, max_facts=500_000))
        view.update(adds=bulk)
        return view

    def load_rechase():
        return chase(tc_db, theory, ChaseConfig(
            max_depth=None, max_facts=500_000))

    def load_check(view, last):
        assert view.saturated and last.saturated
        assert view.facts() == last.structure.facts()

    contrast(f"batch-load-{len(bulk)}adds", "batch_load", "dict",
             load_incremental, load_rechase, 1, load_check)

    return entries, speedups


def serve_entries(full, repeat):
    """The BENCH_serve scoreboard: (entries, speedups).

    One long-lived :class:`~repro.serve.ServerThread` answers the
    Theorem-2 corpus request mix (rewrite + chase + certain per entry)
    plus a set of rewrite-heavy "compile service" tenants — random
    linear theories whose 3-atom join queries take tens of ms to
    rewrite from scratch — over a real loopback socket, in two modes:

    * ``cold`` — one-shot economics inside the same transport: a fresh
      tenant per request and the process-wide caches (plan cache,
      subsumption memo, type-query memo) cleared before each, so every
      request pays parse + plan-compile + full rewriting again;
    * ``warm`` — one tenant throughout, measured after a warm-up pass:
      parsed artifacts, compiled plans, and finished rewritings are
      served from the session, which is the whole point of serve mode.

    Per-request latencies give sustained req/s and p50/p99; the
    acceptance bar is ``SERVE_SPEEDUP_BAR_X`` on total wall with the
    warm p99 under ``SERVE_SLA_MS`` (each request also *runs* under
    that deadline as its guard SLA).  Cold runs first so its cache
    clears cannot steal the warm mode's state.
    """
    from repro.lf.io import atom_to_text, query_to_text, theory_to_text
    from repro.ptypes.bruteforce import clear_type_query_cache
    from repro.serve import ServeConfig, ServerThread

    from repro.zoo import random_linear_theory

    corpus = theorem2_corpus()
    if not full:
        corpus = corpus[:5]
    jobs = []
    for name, theory, database, query in corpus:
        jobs.append(("mix", (
            name,
            theory_to_text(theory),
            "\n".join(atom_to_text(f)
                      for f in sorted(database.facts(), key=str)),
            query_to_text(query),
            [str(v) for v in query.free],
        )))
    # rewrite-heavy tenants: each pays a real UCQ saturation cold
    # (tens of ms) that the warm artifact cache answers instantly
    heavy_specs = [(16, 11), (18, 7), (20, 3)] if not full else \
        [(16, 11), (18, 7), (18, 11), (20, 3)]
    for rules, seed in heavy_specs:
        theory = random_linear_theory(predicates=3, rules=rules, seed=seed)
        jobs.append(("rewrite", (
            f"linear-{rules}r-s{seed}",
            theory_to_text(theory),
            None,
            "P0(x,y), P1(y,z), P2(z,w)",
            [],
        )))
    rounds = max(repeat, 6 if full else 3)

    def fire(client, job, tenant):
        kind, (name, ttext, dtext, qtext, free) = job
        responses = [
            client.request("rewrite", tenant=tenant, theory=ttext,
                           query=qtext, free=free),
        ]
        if kind == "mix":
            responses.append(
                client.request("chase", tenant=tenant, theory=ttext,
                               database=dtext, params={"depth": 6}))
            responses.append(
                client.request("certain", tenant=tenant, theory=ttext,
                               database=dtext, query=qtext, free=free,
                               params={"depth": 6}))
        for response in responses:
            assert response["status"] != "error", response
        return len(responses)

    def measure(client, mode):
        latencies = []
        requests = 0
        serial = 0
        for _ in range(rounds):
            for job in jobs:
                if mode == "cold":
                    clear_plan_cache()
                    clear_subsume_cache()
                    clear_type_query_cache()
                    serial += 1
                    tenant = f"cold-{serial}"
                else:
                    tenant = "warm"
                start = time.perf_counter()
                requests += fire(client, job, tenant)
                latencies.append(time.perf_counter() - start)
        return latencies, requests

    def entry(mode, latencies, requests):
        ordered = sorted(latencies)
        total = sum(latencies)
        count = len(latencies)
        return {
            "workload": f"theorem2-mix-{len(jobs)}jobs",
            "mode": mode,
            "requests": requests,
            "wall_s": round(total, 6),
            "req_per_s": round(requests / max(total, 1e-9), 2),
            "p50_ms": round(ordered[count // 2] * 1000.0, 3),
            "p99_ms": round(
                ordered[min(count - 1, int(0.99 * count))] * 1000.0, 3
            ),
        }

    config = ServeConfig(workers=2, wall_ms=SERVE_SLA_MS)
    with ServerThread(config) as handle:
        with handle.client(timeout=300) as client:
            cold, cold_requests = measure(client, "cold")
            for job in jobs:  # warm-up: populate caches
                fire(client, job, "warm")
            warm, warm_requests = measure(client, "warm")

    entries = [
        entry("cold", cold, cold_requests),
        entry("warm", warm, warm_requests),
    ]
    speedups = {
        "theorem2_mix": round(sum(cold) / max(sum(warm), 1e-9), 2),
    }
    return entries, speedups


def resil_entries(full, repeat):
    """The BENCH_resil scoreboard: (entries, speedups).

    Goodput under a sustained 4x-capacity multi-tenant burst, with and
    without the admission controller.  The workload is the transitive-
    closure chase through serve (tens of ms per request, measured
    serially per run to calibrate the burst rate); three tenant
    connections submit a paced open-loop burst for a fixed window while
    reader threads timestamp every response as it arrives.

    *Goodput* is the number of requests answered ``ok`` within
    ``SERVE_SLA_MS`` of their *submission* (queue time counts — the
    client experience, not the worker's).  The unprotected mode
    (``admission_disabled=True``) queues everything in the executor, so
    late answers are answered but worthless; the admission mode sheds
    early (bounded queues + queue deadlines) and keeps the accepted
    requests' latency under the SLA.  The acceptance bar is
    ``RESIL_GOODPUT_BAR_X`` on goodput, with the admission mode's
    accepted p99 under the SLA; the shed-latency p99 (how fast a shed
    request learns its fate) is reported alongside.
    """
    import socket
    import threading

    from repro.lf.io import atom_to_text, theory_to_text
    from repro.serve import ServeConfig, ServerThread

    workers = 2
    tenants = ("alpha", "beta", "gamma")
    size, edges = (30, 60) if full else (20, 40)
    duration_s = 4.0 if full else 3.0
    sla_s = SERVE_SLA_MS / 1000.0
    ttext = theory_to_text(transitive_theory())
    db = random_edges_database(size, edges, seed=42)
    dtext = "\n".join(atom_to_text(f) for f in sorted(db.facts(), key=str))

    def fire(client, tenant):
        return client.submit("chase", tenant=tenant, theory=ttext,
                             database=dtext, params={"depth": 4})

    def calibrate():
        """Steady-state service time, measured serially on a quiet
        server — both modes burst at the same rate derived from it."""
        with ServerThread(ServeConfig(workers=workers)) as handle:
            with handle.client(timeout=60) as client:
                client.response_for(fire(client, "calibrate"))  # warm
                samples = []
                for _ in range(7):
                    start = time.perf_counter()
                    response = client.response_for(fire(client, "calibrate"))
                    assert response["ok"], response
                    samples.append(time.perf_counter() - start)
        return max(statistics.median(samples), 1e-3)

    def burst(mode, rate):
        if mode == "admission":
            # A short queue: accepted requests must clear well inside
            # the SLA even with the workers GIL-serialised under load.
            config = ServeConfig(workers=workers, wall_ms=SERVE_SLA_MS,
                                 max_pending=2 * workers)
        else:
            config = ServeConfig(workers=workers, wall_ms=SERVE_SLA_MS,
                                 admission_disabled=True)
        total = max(workers * 4, int(rate * duration_s))
        records = {}
        with ServerThread(config) as handle:
            clients = [handle.client(timeout=60) for _ in tenants]
            try:
                # Warm each tenant's session caches before the clock runs.
                for client, tenant in zip(clients, tenants):
                    response = client.response_for(fire(client, tenant))
                    assert response["ok"], response

                expected = [0] * len(clients)
                done = threading.Event()
                lock = threading.Lock()

                def read_all(index, client):
                    seen = 0
                    while True:
                        if done.is_set():
                            with lock:
                                if seen >= expected[index]:
                                    return
                        try:
                            response = client.recv()
                        except socket.timeout:
                            continue  # re-check the exit condition
                        arrival = time.perf_counter()
                        with lock:
                            rec = records.setdefault(
                                (index, response["id"]), {})
                            rec["response"] = response
                            rec["recv"] = arrival
                        seen += 1

                readers = [
                    threading.Thread(target=read_all, args=(i, client),
                                     name=f"resil-reader-{i}", daemon=True)
                    for i, client in enumerate(clients)
                ]
                for reader in readers:
                    reader.start()
                # The paced open-loop burst, round-robin across tenants.
                begin = time.perf_counter()
                for i in range(total):
                    delay = begin + i / rate - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    index = i % len(clients)
                    submitted = time.perf_counter()
                    rid = fire(clients[index], tenants[index])
                    with lock:
                        rec = records.setdefault((index, rid), {})
                        rec["submit"] = submitted
                        expected[index] += 1
                done.set()
                for reader in readers:
                    reader.join(timeout=300)
                    assert not reader.is_alive(), "resil reader wedged"
            finally:
                for client in clients:
                    client.close()
        return records

    def p99_ms(samples):
        if not samples:
            return None
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return round(ordered[index] * 1000.0, 3)

    def entry(mode, records, rate, svc_s):
        ok_latencies = []
        shed_latencies = []
        for rec in records.values():
            response = rec["response"]
            assert isinstance(response.get("ok"), bool), response
            latency = rec["recv"] - rec["submit"]
            if response["ok"]:
                ok_latencies.append(latency)
            else:
                assert response["error"] in (
                    "overloaded", "queue_deadline"), response
                if response["error"] == "overloaded":
                    assert isinstance(response["retry_after_ms"], int)
                shed_latencies.append(latency)
        goodput = sum(1 for latency in ok_latencies if latency <= sla_s)
        return {
            "workload": f"tc-burst-{size}n{edges}e",
            "mode": mode,
            "submitted": len(records),
            "rate_per_s": round(rate, 1),
            "svc_ms": round(svc_s * 1000.0, 3),
            "ok": len(ok_latencies),
            "shed": len(shed_latencies),
            "goodput": goodput,
            "goodput_per_s": round(goodput / duration_s, 2),
            "accepted_p99_ms": p99_ms(ok_latencies),
            "shed_p99_ms": p99_ms(shed_latencies),
        }

    svc_s = calibrate()
    rate = min(400.0, 4.0 * workers / svc_s)  # 4x nominal capacity
    protected = entry("admission", burst("admission", rate), rate, svc_s)
    unprotected = entry(
        "unprotected", burst("unprotected", rate), rate, svc_s)
    entries = [protected, unprotected]
    speedups = {
        "goodput_4x_burst": round(
            protected["goodput"] / max(unprotected["goodput"], 1), 2),
    }
    return entries, speedups


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="run at the bench-file sizes instead of reduced")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions (median is reported)")
    parser.add_argument("--output", type=Path, default=OUTPUT)
    parser.add_argument("--hom-output", type=Path, default=HOM_OUTPUT)
    parser.add_argument("--fc-output", type=Path, default=FC_OUTPUT)
    parser.add_argument("--rewrite-output", type=Path, default=REWRITE_OUTPUT)
    parser.add_argument("--guard-output", type=Path, default=GUARD_OUTPUT)
    parser.add_argument("--store-output", type=Path, default=STORE_OUTPUT)
    parser.add_argument("--incr-output", type=Path, default=INCR_OUTPUT)
    parser.add_argument("--serve-output", type=Path, default=SERVE_OUTPUT)
    parser.add_argument("--resil-output", type=Path, default=RESIL_OUTPUT)
    args = parser.parse_args(argv)

    depth = 40 if args.full else 20
    tc_size, tc_edges = (40, 80) if args.full else (15, 30)
    chain_len = 60 if args.full else 25

    growth_theory = chain_growth_theory(3)
    growth_db = random_edges_database(4, 6, predicates=("P0",), seed=7)
    tc_theory = transitive_theory()
    tc_db = random_edges_database(tc_size, tc_edges, seed=42)

    entries = []
    speedups = {}

    # bench_perf_chase: deep existential recursive chain, both strategies
    per_strategy = {}
    for strategy in (ChaseStrategy.NAIVE, ChaseStrategy.DELTA):
        entry = chase_entry(
            f"recursive-chain-d{depth}", growth_db, growth_theory,
            ChaseConfig(max_depth=depth, strategy=strategy), args.repeat,
        )
        per_strategy[strategy.value] = entry
        entries.append(entry)
    speedups["recursive_chain"] = round(
        per_strategy["naive"]["wall_s"] / max(per_strategy["delta"]["wall_s"], 1e-9), 2
    )

    # bench_perf_chase: transitive closure (datalog, saturating)
    for strategy in (ChaseStrategy.NAIVE, ChaseStrategy.DELTA):
        entries.append(chase_entry(
            f"transitive-closure-{tc_size}n{tc_edges}e", tc_db, tc_theory,
            ChaseConfig(max_depth=None, max_facts=500_000, strategy=strategy),
            args.repeat,
        ))

    # bench_ablation_seminaive: the dedicated datalog fast path on chains
    chain_db = chain_structure(chain_len, constants=True)
    wall, closure = timed(
        lambda: seminaive_saturate(chain_db, tc_theory), args.repeat
    )
    expected = chain_len * (chain_len + 1) // 2
    assert len(closure) == expected, (len(closure), expected)
    entries.append({
        "workload": f"seminaive-chain-{chain_len}",
        "strategy": "seminaive_saturate",
        "wall_s": round(wall, 6),
        "facts": len(closure),
    })

    payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "entries": entries,
        "speedups": speedups,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for entry in entries:
        print(f"{entry['workload']:>34} {entry['strategy']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  {entry['facts']} facts")
    print(f"naive/delta speedup on the recursive chain: "
          f"{speedups['recursive_chain']}x")
    print(f"wrote {args.output}")

    hom_entry_list, hom_speedups = hom_entries(args.full, args.repeat)
    hom_payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "entries": hom_entry_list,
        "speedups": hom_speedups,
    }
    args.hom_output.write_text(
        json.dumps(hom_payload, indent=2, sort_keys=True) + "\n")
    for entry in hom_entry_list:
        print(f"{entry['workload']:>34} {entry['mode']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  result={entry['result']}")
    for name, factor in hom_speedups.items():
        print(f"planned/legacy speedup, {name}: {factor}x")
    print(f"wrote {args.hom_output}")

    fc_entry_list, fc_speedups = fc_entries(args.full, args.repeat)
    fc_payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "entries": fc_entry_list,
        "speedups": fc_speedups,
    }
    args.fc_output.write_text(
        json.dumps(fc_payload, indent=2, sort_keys=True) + "\n")
    for entry in fc_entry_list:
        print(f"{entry['workload']:>34} {entry['engine']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  "
              f"nodes={entry['stats']['nodes']} found={entry['found']}")
    for name, ratios in fc_speedups.items():
        print(f"legacy/delta speedup, {name}: wall {ratios['wall']}x, "
              f"nodes/s {ratios['nodes_per_s']}x")
    print(f"wrote {args.fc_output}")

    rw_entry_list, rw_speedups = rewrite_entries(args.full, args.repeat)
    rw_payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "entries": rw_entry_list,
        "speedups": rw_speedups,
    }
    args.rewrite_output.write_text(
        json.dumps(rw_payload, indent=2, sort_keys=True) + "\n")
    for entry in rw_entry_list:
        print(f"{entry['workload']:>34} {entry['engine']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  "
              f"disjuncts={entry['disjuncts']} "
              f"cand/s={entry['candidates_per_s']}")
    for name, ratios in rw_speedups.items():
        print(f"legacy/indexed speedup, {name}: wall {ratios['wall']}x, "
              f"candidates/s {ratios['candidates_per_s']}x")
    print(f"wrote {args.rewrite_output}")

    guard_entry_list, guard_overheads = guard_entries(args.full, args.repeat)
    guard_payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "bar_pct": GUARD_OVERHEAD_BAR_PCT,
        "entries": guard_entry_list,
        "overhead_pct": guard_overheads,
    }
    args.guard_output.write_text(
        json.dumps(guard_payload, indent=2, sort_keys=True) + "\n")
    for entry in guard_entry_list:
        print(f"{entry['workload']:>34} {entry['mode']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  "
              f"checksum={entry['checksum']}")
    for name, pct in guard_overheads.items():
        print(f"guard overhead, {name}: {pct}% "
              f"(bar: {GUARD_OVERHEAD_BAR_PCT}%)")
    print(f"wrote {args.guard_output}")

    store_entry_list, store_speedups = store_entries(args.full, args.repeat)
    store_payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "bar_x": STORE_SPEEDUP_BAR_X,
        "entries": store_entry_list,
        "speedups": store_speedups,
    }
    args.store_output.write_text(
        json.dumps(store_payload, indent=2, sort_keys=True) + "\n")
    for entry in store_entry_list:
        print(f"{entry['workload']:>34} {entry['backend']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  result={entry['result']}")
    for name, factor in store_speedups.items():
        print(f"dict/columnar speedup, {name}: {factor}x")
    print(f"wrote {args.store_output}")

    incr_entry_list, incr_speedups = incr_entries(args.full, args.repeat)
    incr_payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "bar_x": INCR_SPEEDUP_BAR_X,
        "entries": incr_entry_list,
        "speedups": incr_speedups,
    }
    args.incr_output.write_text(
        json.dumps(incr_payload, indent=2, sort_keys=True) + "\n")
    for entry in incr_entry_list:
        print(f"{entry['workload']:>34} {entry['mode']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  {entry['facts']} facts")
    for name, factor in incr_speedups.items():
        print(f"rechase/incremental speedup, {name}: {factor}x")
    print(f"wrote {args.incr_output}")

    serve_entry_list, serve_speedups = serve_entries(args.full, args.repeat)
    serve_payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "bar_x": SERVE_SPEEDUP_BAR_X,
        "sla_ms": SERVE_SLA_MS,
        "entries": serve_entry_list,
        "speedups": serve_speedups,
    }
    args.serve_output.write_text(
        json.dumps(serve_payload, indent=2, sort_keys=True) + "\n")
    for entry in serve_entry_list:
        print(f"{entry['workload']:>34} {entry['mode']:>20} "
              f"{entry['wall_s'] * 1000:9.2f} ms  "
              f"{entry['req_per_s']} req/s  p50={entry['p50_ms']}ms "
              f"p99={entry['p99_ms']}ms")
    for name, factor in serve_speedups.items():
        print(f"cold/warm speedup, {name}: {factor}x "
              f"(bar: {SERVE_SPEEDUP_BAR_X}x)")
    print(f"wrote {args.serve_output}")

    resil_entry_list, resil_speedups = resil_entries(args.full, args.repeat)
    resil_payload = {
        "mode": "full" if args.full else "reduced",
        "repeat": args.repeat,
        "bar_x": RESIL_GOODPUT_BAR_X,
        "sla_ms": SERVE_SLA_MS,
        "entries": resil_entry_list,
        "speedups": resil_speedups,
    }
    args.resil_output.write_text(
        json.dumps(resil_payload, indent=2, sort_keys=True) + "\n")
    for entry in resil_entry_list:
        print(f"{entry['workload']:>34} {entry['mode']:>20} "
              f"goodput={entry['goodput']}/{entry['submitted']} "
              f"({entry['goodput_per_s']}/s)  "
              f"accepted_p99={entry['accepted_p99_ms']}ms "
              f"shed={entry['shed']} shed_p99={entry['shed_p99_ms']}ms")
    for name, factor in resil_speedups.items():
        print(f"admission/unprotected goodput, {name}: {factor}x "
              f"(bar: {RESIL_GOODPUT_BAR_X}x)")
    print(f"wrote {args.resil_output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
