"""Benchmark-suite configuration.

The benchmarks double as the experiment harness (see EXPERIMENTS.md):
each records the measured quantities in ``benchmark.extra_info`` so the
printed table carries the qualitative results alongside the timings.
"""

import pytest


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["suite"] = "repro: On the BDD/FC Conjecture"
