"""P06 — finite-model search throughput: delta engine vs legacy.

The three workloads of the ``BENCH_fc`` scoreboard at bench sizes:

* the Section 5.5 exhaustive sweep (no model avoids the query — both
  engines must visit the same node set, so the contrast isolates the
  per-node cost of incremental saturation + canonical dedup);
* the Section 5.5 model search over disjoint chains (a wide frontier
  the winner never materialises — the lazy copy-on-write payoff);
* the Theorem-2 counter-model corpus (the paper's E10 pipeline).
"""

import pytest

from repro.fc import SearchConfig, legacy_search, search_finite_model
from repro.zoo import (
    disjoint_chains_database,
    section55_database,
    section55_query,
    section55_theory,
    theorem2_corpus,
)

ENGINES = ("delta", "legacy")


def run_search(engine, database, theory, forbidden, max_elements):
    if engine == "legacy":
        return legacy_search(
            database, theory, forbidden=forbidden, max_elements=max_elements
        )
    return search_finite_model(
        database,
        theory,
        forbidden=forbidden,
        config=SearchConfig(max_elements=max_elements),
    )


def record(benchmark, outcome):
    stats = outcome.stats
    benchmark.extra_info["engine"] = stats.engine
    benchmark.extra_info["nodes"] = stats.nodes
    benchmark.extra_info["duplicates"] = stats.duplicates
    benchmark.extra_info["states_materialised"] = stats.states_materialised
    benchmark.extra_info["states_created"] = stats.states_created
    benchmark.extra_info["found"] = outcome.found


@pytest.mark.parametrize("engine", ENGINES)
def test_section55_exhaustive(benchmark, engine):
    """Every finite model with <= 12 elements satisfies the query."""
    theory, database = section55_theory(), section55_database()
    forbidden = section55_query()

    outcome = benchmark(
        lambda: run_search(engine, database, theory, forbidden, 12)
    )
    record(benchmark, outcome)
    assert not outcome.found
    assert outcome.stats.exhausted


@pytest.mark.parametrize("engine", ENGINES)
def test_section55_model_search(benchmark, engine):
    """Find a model over 12 disjoint chains: the frontier is wide but
    the winning branch is short, so lazy materialisation dominates."""
    theory = section55_theory()
    database = disjoint_chains_database(12)

    outcome = benchmark(lambda: run_search(engine, database, theory, None, 44))
    record(benchmark, outcome)
    assert outcome.found


@pytest.mark.parametrize("engine", ENGINES)
def test_theorem2_counter_models(benchmark, engine):
    """Counter-model search across the whole Theorem-2 corpus."""
    corpus = theorem2_corpus()

    def run():
        outcomes = []
        for _name, theory, database, query in corpus:
            outcomes.append(run_search(engine, database, theory, query, 7))
        return outcomes

    outcomes = benchmark(run)
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["workloads"] = len(outcomes)
    benchmark.extra_info["counter_models"] = sum(o.found for o in outcomes)
    benchmark.extra_info["nodes"] = sum(o.stats.nodes for o in outcomes)
    assert all(outcome.found for outcome in outcomes)
